"""Row assembly and shape checks for experiment results.

A *row* is one (dataset, algorithm, σ, α) cell of a figure: matching
value, iteration counts, violation statistics, wall time.  The *shape
checks* encode the qualitative findings of §6 that a successful
reproduction must exhibit (see DESIGN.md §4); benchmarks print them as
PASS/FAIL lines and the integration tests assert the critical ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from ..graph.bipartite import BipartiteGraph
from ..matching.base import solve
from ..matching.types import MatchingResult

__all__ = ["ResultRow", "run_algorithm", "ShapeCheck", "evaluate_checks"]


@dataclass
class ResultRow:
    """One measured cell of a figure/table."""

    dataset: str
    algorithm: str
    sigma: float
    alpha: float
    epsilon: Optional[float]
    num_edges: int
    value: float
    rounds: int
    mr_jobs: int
    layers: int
    avg_violation: float
    max_violation: float
    feasible: bool
    dual_upper_bound: Optional[float]
    wall_seconds: float
    result: MatchingResult

    def as_dict(self) -> Dict:
        """Plain-dict view for the reporting tables."""
        return {
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "sigma": round(self.sigma, 4),
            "alpha": self.alpha,
            "edges": self.num_edges,
            "value": round(self.value, 1),
            "rounds": self.rounds,
            "mr_jobs": self.mr_jobs,
            "layers": self.layers,
            "avg_violation": round(self.avg_violation, 5),
            "max_violation": round(self.max_violation, 4),
            "feasible": self.feasible,
            "wall_s": round(self.wall_seconds, 2),
        }


def run_algorithm(
    dataset_name: str,
    graph: BipartiteGraph,
    algorithm: str,
    sigma: float,
    alpha: float,
    epsilon: Optional[float] = None,
    **kwargs,
) -> ResultRow:
    """Run one algorithm on one instance and collect every §6 metric."""
    if epsilon is not None and algorithm.startswith("stack"):
        kwargs.setdefault("epsilon", epsilon)
    start = time.perf_counter()
    result = solve(graph, algorithm, **kwargs)
    elapsed = time.perf_counter() - start
    report = result.violations(graph.capacities())
    return ResultRow(
        dataset=dataset_name,
        algorithm=result.algorithm,
        sigma=sigma,
        alpha=alpha,
        epsilon=epsilon,
        num_edges=graph.num_edges,
        value=result.value,
        rounds=result.rounds,
        mr_jobs=result.mr_jobs,
        layers=result.layers,
        avg_violation=report.average_violation,
        max_violation=report.max_violation_ratio,
        feasible=report.feasible,
        dual_upper_bound=result.dual_upper_bound,
        wall_seconds=elapsed,
        result=result,
    )


@dataclass
class ShapeCheck:
    """One qualitative finding of §6, evaluated on measured rows."""

    name: str
    passed: bool
    detail: str

    def line(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.name}: {self.detail}"


def evaluate_checks(rows: List[ResultRow]) -> List[ShapeCheck]:
    """Evaluate the §6 shape findings that apply to ``rows``.

    Checks emitted (when the relevant algorithms are present):

    * GreedyMR attains at least the StackMR value at every cell;
    * matching value is non-decreasing in the number of edges for each
      algorithm (the paper's saturation curves), with 2% slack for the
      randomized stack algorithms;
    * StackMR violations stay within the ``⌈ε·b⌉`` worst case (always
      asserted upstream) and are "small" (≤ 10% average).
    """
    checks: List[ShapeCheck] = []
    by_algo: Dict[str, List[ResultRow]] = {}
    for row in rows:
        by_algo.setdefault(row.algorithm, []).append(row)

    greedy_rows = by_algo.get("GreedyMR", [])
    stack_rows = by_algo.get("StackMR", [])
    if greedy_rows and stack_rows:
        cells = {}
        for row in greedy_rows:
            cells[(row.sigma, row.alpha)] = row.value
        comparable = [
            (row, cells[(row.sigma, row.alpha)])
            for row in stack_rows
            if (row.sigma, row.alpha) in cells
        ]
        if comparable:
            wins = sum(
                1 for row, greedy in comparable if greedy >= row.value
            )
            ratio = sum(
                greedy / row.value for row, greedy in comparable
            ) / len(comparable)
            checks.append(
                ShapeCheck(
                    name="GreedyMR value >= StackMR value",
                    passed=wins == len(comparable),
                    detail=(
                        f"{wins}/{len(comparable)} cells, mean "
                        f"Greedy/Stack = {ratio:.3f} (paper: 1.11-1.31)"
                    ),
                )
            )
    for algorithm, algo_rows in sorted(by_algo.items()):
        per_alpha: Dict[float, List[ResultRow]] = {}
        for row in algo_rows:
            per_alpha.setdefault(row.alpha, []).append(row)
        for alpha, series in per_alpha.items():
            ordered = sorted(series, key=lambda r: r.num_edges)
            if len(ordered) < 2:
                continue
            # The stack algorithms are randomized; small instances can
            # dip a little as σ falls (the paper sees the same effect
            # for StackGreedyMR on flickr-large).  Allow 5% slack.
            slack = 0.95 if algorithm.startswith("Stack") else 1.0
            monotone = all(
                ordered[i + 1].value >= slack * ordered[i].value
                for i in range(len(ordered) - 1)
            )
            checks.append(
                ShapeCheck(
                    name=(
                        f"{algorithm} value grows with edges "
                        f"(alpha={alpha})"
                    ),
                    passed=monotone,
                    detail=" -> ".join(
                        f"{r.value:,.0f}" for r in ordered
                    ),
                )
            )
    for row in rows:
        if row.algorithm.startswith("Stack") and row.epsilon is not None:
            checks.append(
                ShapeCheck(
                    name=(
                        f"{row.algorithm} violations small "
                        f"(sigma={row.sigma:.3g}, alpha={row.alpha})"
                    ),
                    passed=row.avg_violation <= 0.10,
                    detail=f"avg violation = {row.avg_violation:.4f}",
                )
            )
    return checks
