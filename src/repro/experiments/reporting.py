"""Plain-text reporting: ASCII tables and paper-vs-measured blocks.

The benchmark harness prints the same rows/series the paper's figures
plot, so a reader can compare shapes directly from the terminal output
(captured into EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence

__all__ = ["ascii_table", "format_rows", "banner", "series_block"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def ascii_table(
    headers: Sequence[str], rows: Iterable[Sequence]
) -> str:
    """Render rows as a boxed, right-padded ASCII table."""
    materialized = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return (
            "| "
            + " | ".join(
                cell.ljust(widths[i]) for i, cell in enumerate(cells)
            )
            + " |"
        )

    rule = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out = [rule, line(list(headers)), rule]
    out.extend(line(row) for row in materialized)
    out.append(rule)
    return "\n".join(out)


def format_rows(
    rows: Iterable[Mapping], columns: Sequence[str]
) -> str:
    """Render mapping rows as a table over the chosen columns."""
    return ascii_table(
        columns, [[row.get(col, "") for col in columns] for row in rows]
    )


def banner(title: str) -> str:
    """A section banner used by every benchmark's output."""
    bar = "=" * max(len(title), 8)
    return f"\n{bar}\n{title}\n{bar}"


def series_block(
    name: str,
    xs: Sequence,
    ys: Sequence,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one figure series as aligned (x, y) pairs."""
    rows = [[x, y] for x, y in zip(xs, ys)]
    return f"{name}:\n" + ascii_table([x_label, y_label], rows)
