"""Experiment harness: regenerate every table and figure of the paper.

Programmatic use::

    from repro.experiments import value_iterations_experiment
    outcome, report = value_iterations_experiment("fig1")
    print(report)

Command line (scaled-down quick pass over everything)::

    python -m repro.experiments --scale 0.5
"""

from .config import FIGURE_SWEEPS, SweepSpec, bench_scale, bench_seed
from .figures import (
    anytime_experiment,
    capacity_distribution_experiment,
    similarity_distribution_experiment,
    table1_experiment,
    value_iterations_experiment,
    violations_experiment,
)
from .harness import SweepOutcome, run_sweep, sigma_grid
from .metrics import ResultRow, ShapeCheck, evaluate_checks, run_algorithm
from .paper_reference import (
    FIG5_ITERATION_FRACTION_AT_95PCT,
    GREEDY_IMPROVEMENT_OVER_STACK,
    PAPER_CITATION,
    TABLE1,
)
from .reporting import ascii_table, banner, format_rows, series_block

__all__ = [
    "FIGURE_SWEEPS",
    "FIG5_ITERATION_FRACTION_AT_95PCT",
    "GREEDY_IMPROVEMENT_OVER_STACK",
    "PAPER_CITATION",
    "ResultRow",
    "ShapeCheck",
    "SweepOutcome",
    "SweepSpec",
    "TABLE1",
    "anytime_experiment",
    "ascii_table",
    "banner",
    "bench_scale",
    "bench_seed",
    "capacity_distribution_experiment",
    "evaluate_checks",
    "format_rows",
    "run_algorithm",
    "run_sweep",
    "series_block",
    "sigma_grid",
    "similarity_distribution_experiment",
    "table1_experiment",
    "value_iterations_experiment",
    "violations_experiment",
]
