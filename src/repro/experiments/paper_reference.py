"""Numbers reported in the paper, for side-by-side comparison.

Every benchmark prints the paper's value next to the measured one.  We
reproduce *shapes* (who wins, by roughly what factor, how quantities
scale), not absolute numbers: the substrate is a simulator and the
datasets are synthetic stand-ins (DESIGN.md, "Substitutions").
"""

from __future__ import annotations

__all__ = [
    "TABLE1",
    "GREEDY_IMPROVEMENT_OVER_STACK",
    "FIG5_ITERATION_FRACTION_AT_95PCT",
    "FLICKR_LARGE_WORST_VIOLATION",
    "PAPER_CITATION",
]

PAPER_CITATION = (
    "G. De Francisci Morales, A. Gionis, M. Sozio. Social Content "
    "Matching in MapReduce. PVLDB 4(7):460-469, 2011."
)

#: Table 1 — dataset characteristics as crawled by the authors.
TABLE1 = {
    "flickr-small": {"items": 2_817, "consumers": 526, "edges": 550_667},
    "flickr-large": {
        "items": 373_373,
        "consumers": 32_707,
        "edges": 1_995_123_827,
    },
    "yahoo-answers": {
        "items": 4_852_689,
        "consumers": 1_149_714,
        "edges": 18_847_281_236,
    },
}

#: §6 "Quality": average value advantage of GreedyMR over StackMR.
GREEDY_IMPROVEMENT_OVER_STACK = {
    "flickr-small": 0.11,
    "flickr-large": 0.31,
    "yahoo-answers": 0.14,
}

#: §6 "Any-time stopping": fraction of GreedyMR iterations needed to
#: reach 95% of the final matching value (averaged over settings).
FIG5_ITERATION_FRACTION_AT_95PCT = {
    "flickr-small": 0.2891,
    "flickr-large": 0.4418,
    "yahoo-answers": 0.2935,
}

#: §6 "Capacity violations": worst average violation observed for
#: StackMR at ε=1 on flickr-large ("as low as 6% in the worst case");
#: practically zero on yahoo-answers.
FLICKR_LARGE_WORST_VIOLATION = 0.06
