"""Sweep runner: executes one figure's parameter grid and collects rows.

The paper's Figures 1–4 all share one experimental skeleton: fix (α, ε),
sweep the similarity threshold σ (reported as the resulting number of
candidate edges on the x-axis), and run each algorithm on every
instance.  :func:`run_sweep` implements that skeleton once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..datasets.base import Dataset
from ..datasets.registry import load_dataset
from .config import SweepSpec
from .metrics import ResultRow, run_algorithm

__all__ = ["SweepOutcome", "sigma_grid", "run_sweep"]


@dataclass
class SweepOutcome:
    """All measured rows of one sweep plus the dataset that produced them."""

    spec: SweepSpec
    dataset: Dataset
    sigmas: List[float]
    rows: List[ResultRow]

    def series(
        self, algorithm: str, alpha: float, field: str
    ) -> Tuple[List[int], List]:
        """Extract one figure series: x = #edges, y = ``field``."""
        points = sorted(
            (
                (row.num_edges, getattr(row, field))
                for row in self.rows
                if row.algorithm == algorithm and row.alpha == alpha
            ),
            key=lambda point: point[0],
        )
        return [p[0] for p in points], [p[1] for p in points]


def sigma_grid(
    dataset: Dataset,
    edge_fractions: Sequence[float],
    floor_sigma: float,
) -> List[float]:
    """σ values whose edge counts hit the requested fractions.

    Fractions are of the candidate-edge count at ``floor_sigma``;
    duplicates (possible on very discrete similarity distributions) are
    collapsed.
    """
    total = len(dataset.edges(floor_sigma))
    sigmas: List[float] = []
    for fraction in sorted(edge_fractions):
        target = max(1, int(fraction * total))
        sigma = dataset.sigma_for_edge_count(target, floor_sigma)
        if not sigmas or abs(sigma - sigmas[-1]) > 1e-12:
            sigmas.append(sigma)
    return sigmas


def run_sweep(
    spec: SweepSpec,
    seed: int = 0,
    algorithm_kwargs: Optional[Dict[str, Dict]] = None,
) -> SweepOutcome:
    """Run every (α, σ, algorithm) cell of ``spec`` and collect rows.

    ``algorithm_kwargs`` optionally forwards per-algorithm keyword
    arguments (e.g. ``{"stack_mr": {"seed": 3}}``).
    """
    algorithm_kwargs = algorithm_kwargs or {}
    dataset = load_dataset(spec.dataset, seed=seed, scale=spec.scale)
    sigmas = sigma_grid(dataset, spec.edge_fractions, spec.floor_sigma)
    rows: List[ResultRow] = []
    for alpha in spec.alphas:
        for sigma in sigmas:
            graph = dataset.graph(sigma=sigma, alpha=alpha)
            for algorithm in spec.algorithms:
                kwargs = dict(algorithm_kwargs.get(algorithm, {}))
                rows.append(
                    run_algorithm(
                        dataset.name,
                        graph,
                        algorithm,
                        sigma=sigma,
                        alpha=alpha,
                        epsilon=spec.epsilon,
                        **kwargs,
                    )
                )
    return SweepOutcome(
        spec=spec, dataset=dataset, sigmas=sigmas, rows=rows
    )
