"""Experiment configuration shared by the harness and the benchmarks.

Benchmark scale is environment-tunable: ``REPRO_BENCH_SCALE`` multiplies
dataset sizes (default keeps the whole suite laptop-sized), and
``REPRO_BENCH_SEED`` pins the generator seed.  The per-figure parameter
grids (σ via target edge counts, α, ε) live here so benchmarks, tests,
and EXPERIMENTS.md all agree on what was run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

__all__ = ["bench_scale", "bench_seed", "SweepSpec", "FIGURE_SWEEPS"]


def bench_scale(default: float = 1.0) -> float:
    """Global dataset scale for benchmarks (``REPRO_BENCH_SCALE``)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", default))


def bench_seed(default: int = 0) -> int:
    """Global generator seed for benchmarks (``REPRO_BENCH_SEED``)."""
    return int(os.environ.get("REPRO_BENCH_SEED", default))


@dataclass
class SweepSpec:
    """One figure's parameter grid.

    ``edge_fractions`` positions the x-axis of Figures 1–3: each entry
    is a fraction of the dataset's candidate edges at ``floor_sigma``,
    converted to a σ threshold by the dataset's similarity quantiles
    (the paper sweeps σ and reports the resulting number of edges).
    """

    dataset: str
    scale: float
    floor_sigma: float
    edge_fractions: Sequence[float] = (0.05, 0.1, 0.2, 0.4)
    alphas: Sequence[float] = (2.0,)
    epsilon: float = 1.0
    algorithms: Sequence[str] = (
        "greedy_mr",
        "stack_mr",
        "stack_greedy_mr",
    )


#: The default grids behind each figure benchmark.  Scales are chosen so
#: the full suite finishes in minutes on one machine; multiply them with
#: REPRO_BENCH_SCALE for larger runs.
FIGURE_SWEEPS: Dict[str, SweepSpec] = {
    "fig1": SweepSpec(
        dataset="flickr-small",
        scale=0.30,
        floor_sigma=1.0,
        alphas=(2.0, 4.0),
    ),
    "fig2": SweepSpec(
        dataset="flickr-large",
        scale=0.12,
        floor_sigma=1.0,
        alphas=(2.0,),
    ),
    "fig3": SweepSpec(
        dataset="yahoo-answers",
        scale=0.12,
        floor_sigma=2.0,
        alphas=(2.0,),
    ),
    "fig4": SweepSpec(
        dataset="flickr-large",
        scale=0.12,
        floor_sigma=1.0,
        edge_fractions=(0.05, 0.1, 0.2, 0.4),
        alphas=(1.0, 2.0, 4.0),
        algorithms=("stack_mr",),
    ),
    "fig5": SweepSpec(
        dataset="flickr-small",
        scale=0.30,
        floor_sigma=1.0,
        edge_fractions=(0.1, 0.2),
        algorithms=("greedy_mr",),
    ),
}
