"""Run the complete evaluation from the command line.

``python -m repro.experiments [--scale S] [--seed N] [--only fig1,...]``

Prints every table/figure reproduction in sequence; use ``--scale`` to
shrink or enlarge the synthetic datasets (1.0 = the defaults used in
EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import sys
import time

from .figures import (
    anytime_experiment,
    capacity_distribution_experiment,
    similarity_distribution_experiment,
    table1_experiment,
    value_iterations_experiment,
    violations_experiment,
)
from .paper_reference import PAPER_CITATION

EXPERIMENTS = {
    "table1": lambda scale, seed: table1_experiment(scale, seed)[1],
    "fig1": lambda scale, seed: value_iterations_experiment(
        "fig1", scale, seed
    )[1],
    "fig2": lambda scale, seed: value_iterations_experiment(
        "fig2", scale, seed
    )[1],
    "fig3": lambda scale, seed: value_iterations_experiment(
        "fig3", scale, seed
    )[1],
    "fig4": lambda scale, seed: violations_experiment(scale, seed)[1],
    "fig5": lambda scale, seed: anytime_experiment(scale, seed)[1],
    "fig6": lambda scale, seed: similarity_distribution_experiment(
        scale, seed
    )[1],
    "fig7": lambda scale, seed: capacity_distribution_experiment(
        scale, seed
    )[1],
}


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=f"Reproduce the evaluation of: {PAPER_CITATION}",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="dataset scale multiplier (default 1.0)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="generator seed"
    )
    parser.add_argument(
        "--only",
        type=str,
        default="",
        help="comma-separated subset of: " + ", ".join(EXPERIMENTS),
    )
    args = parser.parse_args(argv)
    selected = (
        [name.strip() for name in args.only.split(",") if name.strip()]
        if args.only
        else list(EXPERIMENTS)
    )
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")
    for name in selected:
        start = time.perf_counter()
        print(EXPERIMENTS[name](args.scale, args.seed))
        print(
            f"[{name} completed in "
            f"{time.perf_counter() - start:.1f}s]\n"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
