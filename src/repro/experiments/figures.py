"""One function per table/figure of the paper's evaluation (§6).

Each function runs the corresponding experiment at a configurable scale
and returns ``(rows/data, report_text)`` where the report prints the
same series the paper plots, next to the paper's own numbers.  The
benchmark suite calls these functions; EXPERIMENTS.md records their
output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..datasets.base import Dataset
from ..datasets.registry import load_dataset
from ..datasets.stats import log_histogram, tail_summary
from .config import FIGURE_SWEEPS, SweepSpec, bench_scale, bench_seed
from .harness import SweepOutcome, run_sweep, sigma_grid
from .metrics import evaluate_checks, run_algorithm
from .paper_reference import (
    FIG5_ITERATION_FRACTION_AT_95PCT,
    GREEDY_IMPROVEMENT_OVER_STACK,
    TABLE1,
)
from .reporting import ascii_table, banner, format_rows

__all__ = [
    "table1_experiment",
    "value_iterations_experiment",
    "violations_experiment",
    "anytime_experiment",
    "similarity_distribution_experiment",
    "capacity_distribution_experiment",
]

_FLOOR_SIGMAS = {
    "flickr-small": 1.0,
    "flickr-large": 1.0,
    "yahoo-answers": 2.0,
}


def _scaled(spec: SweepSpec, scale_multiplier: float) -> SweepSpec:
    return SweepSpec(
        dataset=spec.dataset,
        scale=spec.scale * scale_multiplier,
        floor_sigma=spec.floor_sigma,
        edge_fractions=spec.edge_fractions,
        alphas=spec.alphas,
        epsilon=spec.epsilon,
        algorithms=spec.algorithms,
    )


def table1_experiment(
    scale_multiplier: Optional[float] = None,
    seed: Optional[int] = None,
) -> Tuple[List[Dict], str]:
    """Table 1: dataset characteristics, measured versus the paper."""
    scale_multiplier = (
        bench_scale() if scale_multiplier is None else scale_multiplier
    )
    seed = bench_seed() if seed is None else seed
    scales = {
        "flickr-small": 1.0,
        "flickr-large": 0.5,
        "yahoo-answers": 0.5,
    }
    rows: List[Dict] = []
    for name, base_scale in scales.items():
        dataset = load_dataset(
            name, seed=seed, scale=base_scale * scale_multiplier
        )
        measured = dataset.table1_row(_FLOOR_SIGMAS[name])
        paper = TABLE1[name]
        rows.append(
            {
                "dataset": name,
                "|T| measured": measured["items"],
                "|T| paper": paper["items"],
                "|C| measured": measured["consumers"],
                "|C| paper": paper["consumers"],
                "|E| measured": measured["edges"],
                "|E| paper": paper["edges"],
            }
        )
    text = banner("Table 1 — dataset characteristics") + "\n"
    text += (
        "(measured datasets are scaled synthetic stand-ins; "
        "see DESIGN.md)\n"
    )
    text += format_rows(
        rows,
        [
            "dataset",
            "|T| measured",
            "|T| paper",
            "|C| measured",
            "|C| paper",
            "|E| measured",
            "|E| paper",
        ],
    )
    return rows, text


def value_iterations_experiment(
    figure_key: str,
    scale_multiplier: Optional[float] = None,
    seed: Optional[int] = None,
) -> Tuple[SweepOutcome, str]:
    """Figures 1-3: matching value and MR iterations versus #edges."""
    scale_multiplier = (
        bench_scale() if scale_multiplier is None else scale_multiplier
    )
    seed = bench_seed() if seed is None else seed
    spec = _scaled(FIGURE_SWEEPS[figure_key], scale_multiplier)
    outcome = run_sweep(spec, seed=seed)
    figure_number = {"fig1": 1, "fig2": 2, "fig3": 3}[figure_key]
    text = banner(
        f"Figure {figure_number} — {spec.dataset}: matching value and "
        "MapReduce iterations vs number of edges"
    )
    text += "\n" + format_rows(
        [row.as_dict() for row in outcome.rows],
        [
            "algorithm",
            "alpha",
            "sigma",
            "edges",
            "value",
            "mr_jobs",
            "rounds",
            "layers",
            "avg_violation",
        ],
    )
    paper_gain = GREEDY_IMPROVEMENT_OVER_STACK[spec.dataset]
    text += (
        f"\npaper: GreedyMR value exceeds StackMR by ~"
        f"{paper_gain:.0%} on {spec.dataset}; stack algorithms "
        "use fewer MR iterations at scale.\n"
    )
    for check in evaluate_checks(outcome.rows):
        text += check.line() + "\n"
    return outcome, text


def violations_experiment(
    scale_multiplier: Optional[float] = None,
    seed: Optional[int] = None,
    epsilons: Sequence[float] = (1.0,),
) -> Tuple[List[SweepOutcome], str]:
    """Figure 4: StackMR capacity violations across σ, α (and ε)."""
    scale_multiplier = (
        bench_scale() if scale_multiplier is None else scale_multiplier
    )
    seed = bench_seed() if seed is None else seed
    base = _scaled(FIGURE_SWEEPS["fig4"], scale_multiplier)
    outcomes: List[SweepOutcome] = []
    text = banner(
        "Figure 4 — StackMR capacity violations (average ε′)"
    )
    for epsilon in epsilons:
        spec = SweepSpec(
            dataset=base.dataset,
            scale=base.scale,
            floor_sigma=base.floor_sigma,
            edge_fractions=base.edge_fractions,
            alphas=base.alphas,
            epsilon=epsilon,
            algorithms=base.algorithms,
        )
        outcome = run_sweep(spec, seed=seed)
        outcomes.append(outcome)
        text += f"\nepsilon = {epsilon}:\n"
        text += format_rows(
            [row.as_dict() for row in outcome.rows],
            [
                "alpha",
                "sigma",
                "edges",
                "avg_violation",
                "max_violation",
                "value",
            ],
        )
    text += (
        "\npaper: at ε=1 violations are at most ~6% on flickr-large "
        "and grow with more edges (lower σ) and larger α; practically "
        "zero on yahoo-answers.\n"
    )
    return outcomes, text


def anytime_experiment(
    scale_multiplier: Optional[float] = None,
    seed: Optional[int] = None,
    datasets: Sequence[str] = (
        "flickr-small",
        "flickr-large",
        "yahoo-answers",
    ),
    alpha: float = 2.0,
) -> Tuple[List[Dict], str]:
    """Figure 5: GreedyMR any-time convergence.

    For each dataset, runs GreedyMR and reports at which fraction of its
    iterations the solution reached 95% of the final value, against the
    paper's 28.91% / 44.18% / 29.35%.
    """
    scale_multiplier = (
        bench_scale() if scale_multiplier is None else scale_multiplier
    )
    seed = bench_seed() if seed is None else seed
    scales = {
        "flickr-small": 0.3,
        "flickr-large": 0.2,
        "yahoo-answers": 0.2,
    }
    rows: List[Dict] = []
    curves: Dict[str, List[float]] = {}
    for name in datasets:
        dataset = load_dataset(
            name, seed=seed, scale=scales[name] * scale_multiplier
        )
        floor = _FLOOR_SIGMAS[name]
        sigma = sigma_grid(dataset, (0.2,), floor)[0]
        graph = dataset.graph(sigma=sigma, alpha=alpha)
        row = run_algorithm(
            name, graph, "greedy_mr", sigma=sigma, alpha=alpha
        )
        history = row.result.value_history
        rounds_at_95 = row.result.iterations_to_fraction(0.95)
        fraction = rounds_at_95 / len(history) if history else 0.0
        curves[name] = [
            value / history[-1] for value in history
        ] if history and history[-1] > 0 else []
        rows.append(
            {
                "dataset": name,
                "edges": row.num_edges,
                "iterations": len(history),
                "iters to 95%": rounds_at_95,
                "fraction measured": round(fraction, 4),
                "fraction paper": FIG5_ITERATION_FRACTION_AT_95PCT[name],
            }
        )
    text = banner(
        "Figure 5 — GreedyMR any-time convergence (95% of final value)"
    )
    text += "\n" + format_rows(
        rows,
        [
            "dataset",
            "edges",
            "iterations",
            "iters to 95%",
            "fraction measured",
            "fraction paper",
        ],
    )
    for name, curve in curves.items():
        if not curve:
            continue
        marks = [0.25, 0.5, 0.75, 1.0]
        points = [
            (
                f"{mark:.0%} iters",
                round(curve[min(int(mark * len(curve)), len(curve) - 1)], 4),
            )
            for mark in marks
        ]
        text += f"\n{name} value fraction: " + ", ".join(
            f"{label}={value}" for label, value in points
        )
    text += "\n"
    return rows, text


def similarity_distribution_experiment(
    scale_multiplier: Optional[float] = None,
    seed: Optional[int] = None,
) -> Tuple[Dict[str, Dict], str]:
    """Figure 6: distribution of edge similarities per dataset."""
    scale_multiplier = (
        bench_scale() if scale_multiplier is None else scale_multiplier
    )
    seed = bench_seed() if seed is None else seed
    scales = {
        "flickr-small": 0.5,
        "flickr-large": 0.25,
        "yahoo-answers": 0.25,
    }
    data: Dict[str, Dict] = {}
    text = banner("Figure 6 — distribution of edge similarities")
    for name, base_scale in scales.items():
        dataset = load_dataset(
            name, seed=seed, scale=base_scale * scale_multiplier
        )
        values = dataset.similarity_values(_FLOOR_SIGMAS[name])
        histogram = log_histogram(values)
        summary = tail_summary(values)
        data[name] = {"histogram": histogram, "summary": summary}
        text += f"\n{name} (n={histogram.count:,}):\n"
        text += ascii_table(
            ["similarity bin", "count"], histogram.rows()
        )
        text += "\ntail: " + ", ".join(
            f"{key}={value:.3g}" for key, value in summary.items()
        ) + "\n"
    text += (
        "\npaper: all three similarity distributions are heavy-tailed "
        "(most candidate edges have low weight).\n"
    )
    return data, text


def capacity_distribution_experiment(
    scale_multiplier: Optional[float] = None,
    seed: Optional[int] = None,
    alpha: float = 2.0,
) -> Tuple[Dict[str, Dict], str]:
    """Figure 7: distribution of capacities per dataset."""
    scale_multiplier = (
        bench_scale() if scale_multiplier is None else scale_multiplier
    )
    seed = bench_seed() if seed is None else seed
    scales = {
        "flickr-small": 0.5,
        "flickr-large": 0.25,
        "yahoo-answers": 0.25,
    }
    data: Dict[str, Dict] = {}
    text = banner(
        f"Figure 7 — distribution of capacities (alpha={alpha})"
    )
    for name, base_scale in scales.items():
        dataset = load_dataset(
            name, seed=seed, scale=base_scale * scale_multiplier
        )
        item_caps, consumer_caps = dataset.capacities(alpha)
        item_summary = tail_summary(list(item_caps.values()))
        consumer_summary = tail_summary(list(consumer_caps.values()))
        data[name] = {
            "items": {
                "histogram": log_histogram(list(item_caps.values())),
                "summary": item_summary,
            },
            "consumers": {
                "histogram": log_histogram(
                    list(consumer_caps.values())
                ),
                "summary": consumer_summary,
            },
        }
        text += f"\n{name} item capacities:    " + ", ".join(
            f"{key}={value:.3g}" for key, value in item_summary.items()
        )
        text += f"\n{name} consumer capacities: " + ", ".join(
            f"{key}={value:.3g}"
            for key, value in consumer_summary.items()
        )
    text += (
        "\n\npaper: capacity distributions are heavy-tailed; "
        "flickr-large's item capacities are markedly more skewed than "
        "flickr-small's (the paper's explanation for its violation and "
        "StackGreedyMR anomalies); yahoo-answers item capacities are "
        "constant by construction.\n"
    )
    return data, text
