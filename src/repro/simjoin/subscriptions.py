"""Subscription-restricted candidate edges (§4, "Candidate edges").

The paper's alternative to threshold pruning: "in social-networking
sites it is common for consumers to subscribe to suppliers they are
interested in.  In such an application, we restrict to candidate edges
(t_i, c_j) for which t_i has been created by a producer to whom c_j has
subscribed."

Two entry points:

* :func:`filter_by_subscription` — post-filter an existing candidate
  edge list (composes with any join engine, including the MapReduce
  one);
* :func:`subscription_join` — compute the candidate edges directly by
  enumerating each consumer's subscribed producers' items, which never
  materializes unsubscribed pairs (the efficient path when follow
  lists are short).

Both produce identical edge sets (tested).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Set, Tuple

from ..text.vectors import dot

__all__ = ["filter_by_subscription", "subscription_join"]

JoinRow = Tuple[str, str, float]


def filter_by_subscription(
    edges: Iterable[JoinRow],
    item_owner: Mapping[str, str],
    subscriptions: Mapping[str, Set[str]],
) -> List[JoinRow]:
    """Keep only edges whose item's owner the consumer follows.

    ``item_owner`` maps item -> producer; ``subscriptions`` maps
    consumer -> set of producers followed.  Items without a recorded
    owner and consumers without subscriptions yield no edges.
    """
    kept: List[JoinRow] = []
    for item, consumer, weight in edges:
        owner = item_owner.get(item)
        if owner is not None and owner in subscriptions.get(
            consumer, ()
        ):
            kept.append((item, consumer, weight))
    kept.sort()
    return kept


def subscription_join(
    items: Mapping[str, Mapping[str, float]],
    consumers: Mapping[str, Mapping[str, float]],
    item_owner: Mapping[str, str],
    subscriptions: Mapping[str, Set[str]],
    sigma: float = 0.0,
) -> List[JoinRow]:
    """Candidate edges over subscribed pairs only.

    Enumerates consumer × followed-producer × producer's-items, so the
    cost is proportional to the realized follow graph rather than
    ``|T|·|C|``.  ``sigma`` optionally also applies the §4 weight
    threshold on top of the subscription restriction (with the default
    ``0.0``, any positive-similarity subscribed pair qualifies).
    """
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    items_of_owner: Dict[str, List[str]] = {}
    for item, owner in item_owner.items():
        items_of_owner.setdefault(owner, []).append(item)
    rows: List[JoinRow] = []
    for consumer, followed in subscriptions.items():
        consumer_vector = consumers.get(consumer)
        if not consumer_vector:
            continue
        for owner in followed:
            for item in items_of_owner.get(owner, ()):
                item_vector = items.get(item)
                if not item_vector:
                    continue
                weight = dot(item_vector, consumer_vector)
                if weight > 0 and weight >= sigma:
                    rows.append((item, consumer, weight))
    rows.sort()
    return rows
