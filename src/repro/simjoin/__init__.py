"""Similarity join: candidate-edge generation with prefix filtering (§5.1).

Public surface::

    from repro.simjoin import candidate_edges
    edges = candidate_edges(item_vectors, consumer_vectors, sigma=0.5,
                            method="mapreduce")
"""

from .allpairs import exact_similarity_join, scipy_similarity_join
from .api import JOIN_METHODS, candidate_edges
from .mr_join import (
    CandidateJob,
    TermBoundsJob,
    VerifyJob,
    mapreduce_similarity_join,
    similarity_join_pipeline,
)
from .prefix_filter import prefix_terms, suffix_bound
from .stats import document_frequencies_of, max_term_weights
from .subscriptions import filter_by_subscription, subscription_join

__all__ = [
    "CandidateJob",
    "JOIN_METHODS",
    "TermBoundsJob",
    "VerifyJob",
    "candidate_edges",
    "document_frequencies_of",
    "exact_similarity_join",
    "filter_by_subscription",
    "mapreduce_similarity_join",
    "max_term_weights",
    "prefix_terms",
    "scipy_similarity_join",
    "similarity_join_pipeline",
    "subscription_join",
    "suffix_bound",
]
