"""The MapReduce similarity join (adaptation of Baraglia et al., §5.1).

Pipeline (each step one MapReduce job):

1. **term-bounds** — scan the consumer collection and compute, per term,
   the maximum weight (the pruning bound of the pruned inverted index);
2. **candidates** — build the pruned inverted index: items post only
   their *prefix* terms (see :mod:`repro.simjoin.prefix_filter`),
   consumers post all their terms; each reduce emits the cross-side
   pairs sharing that term;
3. **verify** — deduplicate candidate pairs and compute the exact dot
   product against the document stores (shipped as side data, the
   analogue of Hadoop's DistributedCache); pairs at or above ``σ``
   become candidate edges.

The paper reports two MapReduce iterations for the self-join of
Baraglia et al. (term statistics precomputed); our bipartite variant
spends one extra job on the term bounds, which we report honestly in
the job counts.

The join is *exact*: its output is identical to
:func:`repro.simjoin.allpairs.exact_similarity_join` (property-tested).
Only cross-side (item, consumer) pairs are produced — the modification
of the self-join algorithm described in §5.1.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..mapreduce import (
    FileSystem,
    KeyValue,
    MapReduceJob,
    MapReduceRuntime,
    Pipeline,
)
from ..text.vectors import dot
from .prefix_filter import prefix_terms

__all__ = [
    "TermBoundsJob",
    "CandidateJob",
    "VerifyJob",
    "mapreduce_similarity_join",
    "similarity_join_pipeline",
]

ITEM_TAG = "T"
CONSUMER_TAG = "C"

JoinRow = Tuple[str, str, float]


class TermBoundsJob(MapReduceJob):
    """Job 1: per-term maximum weight over the consumer collection."""

    name = "simjoin-term-bounds"
    has_combiner = True

    def map(self, doc_id, tagged) -> Iterable[KeyValue]:
        tag, vector = tagged
        if tag == CONSUMER_TAG:
            for term, weight in vector.items():
                yield term, weight

    def combine(self, term, weights: List[float]) -> Iterable[KeyValue]:
        yield term, max(weights)

    def reduce(self, term, weights: List[float]) -> Iterable[KeyValue]:
        yield term, max(weights)


class CandidateJob(MapReduceJob):
    """Job 2: pruned inverted index + cross-side candidate generation.

    Side data: ``max_weights`` (output of job 1) and ``sigma``.
    """

    name = "simjoin-candidates"

    def map(self, doc_id, tagged) -> Iterable[KeyValue]:
        tag, vector = tagged
        if tag == ITEM_TAG:
            bounds = self.side_data["max_weights"]
            sigma = self.side_data["sigma"]
            for term in prefix_terms(vector, bounds, sigma):
                yield term, (ITEM_TAG, doc_id)
        else:
            for term in vector:
                yield term, (CONSUMER_TAG, doc_id)

    def reduce(self, term, postings: List) -> Iterable[KeyValue]:
        item_ids = sorted(d for tag, d in postings if tag == ITEM_TAG)
        consumer_ids = sorted(
            d for tag, d in postings if tag == CONSUMER_TAG
        )
        for item in item_ids:
            for consumer in consumer_ids:
                yield (item, consumer), 1


class VerifyJob(MapReduceJob):
    """Job 3: deduplicate candidates and verify the exact similarity.

    Side data: the two document stores and ``sigma``.  Grouping by the
    pair key performs the deduplication; the reduce recomputes the full
    dot product, discarding sub-threshold candidates.
    """

    name = "simjoin-verify"
    has_combiner = True

    def map(self, pair, count) -> Iterable[KeyValue]:
        yield pair, count

    def combine(self, pair, counts: List[int]) -> Iterable[KeyValue]:
        yield pair, 1  # deduplicate early to shrink the shuffle

    def reduce(self, pair, counts: List[int]) -> Iterable[KeyValue]:
        item, consumer = pair
        items: Mapping = self.side_data["items"]
        consumers: Mapping = self.side_data["consumers"]
        similarity = dot(items[item], consumers[consumer])
        if similarity >= self.side_data["sigma"]:
            yield (item, consumer), similarity


def mapreduce_similarity_join(
    items: Mapping[str, Mapping[str, float]],
    consumers: Mapping[str, Mapping[str, float]],
    sigma: float,
    runtime: Optional[MapReduceRuntime] = None,
    filesystem: Optional[FileSystem] = None,
) -> List[JoinRow]:
    """Run the three-job pipeline; returns sorted ``(t, c, w)`` rows.

    The jobs are wired through the runtime's filesystem (see
    :func:`similarity_join_pipeline`), so a runtime built with
    ``storage="disk"`` runs the whole join out of core — inputs,
    intermediates, and the verified edges live on disk, and a
    ``spill_threshold`` additionally bounds the shuffle buffers.  The
    returned rows are bit-identical across storage backends, spill
    thresholds, and execution backends.

    On the default in-memory filesystem (no explicit ``filesystem``)
    the ``/simjoin/*`` datasets are deleted before returning, so this
    function retains no duplicate of the corpus in RAM — matching its
    pre-pipeline behavior.  On-disk datasets (or an explicitly passed
    filesystem) are kept for inspection; use
    :func:`similarity_join_pipeline` directly when you want the
    intermediates regardless of backend.
    """
    pipeline = similarity_join_pipeline(
        items, consumers, sigma, runtime=runtime, filesystem=filesystem
    )
    verified = pipeline.run()
    if filesystem is None and pipeline.filesystem.name == "memory":
        # Exactly the datasets this pipeline wrote — never a prefix
        # sweep, which could catch caller data under /simjoin/*.
        for path in (
            "/simjoin/documents",
            "/simjoin/term_bounds",
            "/simjoin/candidates",
            "/simjoin/edges",
        ):
            if pipeline.filesystem.exists(path):
                pipeline.filesystem.delete(path)
    rows = sorted(
        (item, consumer, weight)
        for (item, consumer), weight in verified
    )
    return rows


def similarity_join_pipeline(
    items: Mapping[str, Mapping[str, float]],
    consumers: Mapping[str, Mapping[str, float]],
    sigma: float,
    runtime: Optional[MapReduceRuntime] = None,
    filesystem: Optional[FileSystem] = None,
) -> Pipeline:
    """The three jobs, wired as a DFS-backed :class:`Pipeline`.

    This is the deployment shape of the computation: each stage reads
    and writes named datasets on the (simulated or on-disk) distributed
    filesystem — by default the runtime's own (``storage=`` at runtime
    construction) — so intermediate results — the term bounds under
    ``/simjoin/term_bounds``, the candidate pairs under
    ``/simjoin/candidates`` — are inspectable after the run.  Running
    the returned pipeline produces the verified edges at
    ``/simjoin/edges`` (and as ``Pipeline.run()``'s return value);
    output is identical to :func:`mapreduce_similarity_join`, which
    delegates here.
    """
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    pipeline = Pipeline(runtime=runtime, filesystem=filesystem)
    documents: List[KeyValue] = [
        (doc, (ITEM_TAG, vector)) for doc, vector in sorted(items.items())
    ] + [
        (doc, (CONSUMER_TAG, vector))
        for doc, vector in sorted(consumers.items())
    ]
    pipeline.filesystem.write(
        "/simjoin/documents", documents, overwrite=True
    )
    pipeline.add(
        TermBoundsJob(), ["/simjoin/documents"], "/simjoin/term_bounds"
    )
    pipeline.add(
        CandidateJob(),
        ["/simjoin/documents"],
        "/simjoin/candidates",
        side_data=lambda fs: {
            "max_weights": dict(fs.read("/simjoin/term_bounds")),
            "sigma": sigma,
        },
    )
    pipeline.add(
        VerifyJob(),
        ["/simjoin/candidates"],
        "/simjoin/edges",
        side_data=lambda fs: {
            "items": dict(items),
            "consumers": dict(consumers),
            "sigma": sigma,
        },
    )
    return pipeline
