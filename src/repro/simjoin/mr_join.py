"""The MapReduce similarity join (adaptation of Baraglia et al., §5.1).

Pipeline (each step one MapReduce job):

1. **term-bounds** — scan the consumer collection and compute, per term,
   the maximum weight (the pruning bound of the pruned inverted index);
2. **candidates** — build the inverted index and emit *partial scores*:
   items whose prefix (see :mod:`repro.simjoin.prefix_filter`) is
   non-empty post all their terms with weights, consumers post all
   their terms with weights; each reduce emits, for every cross-side
   pair sharing that term, the weight product ``w_t(j) · w_c(j)``
   (tagged with whether ``j`` is a prefix term of the item);
3. **verify** — a pure sum-and-threshold: group the products by pair,
   sum them (a combiner pre-aggregates map-side), and keep pairs that
   co-occurred on at least one prefix term and reach ``σ``.

The verify stage is a *partial-score kernel* in the style of Vernica
et al. / DISCO (see PAPERS.md): the exact dot product of a pair is
assembled in the shuffle as the sum of its per-term weight products.
Earlier revisions instead shipped both full document stores to every
verify task as side data — the DistributedCache anti-pattern, whose
cost (replicating the corpus to every reduce task) dwarfs the shuffle
it saved.  The trade: candidate map output grows from prefix-only to
all item terms, while verify needs no side data beyond the scalar
``σ`` and its shuffle carries ``(pair, product)`` records that the
combiner collapses per map task.

Pruning still earns its keep in two places: an item whose prefix is
*empty* cannot reach ``σ`` against any consumer and posts nothing at
all, and the prefix-hit count gates verification exactly like the
pruned index used to — a pair sharing no prefix term is provably
sub-threshold (the bound of :mod:`repro.simjoin.prefix_filter`) and is
discarded without a threshold comparison.

The paper reports two MapReduce iterations for the self-join of
Baraglia et al. (term statistics precomputed); our bipartite variant
spends one extra job on the term bounds, which we report honestly in
the job counts.

The join is *exact up to float summation order*: it evaluates the same
mathematical dot product as :func:`repro.simjoin.allpairs.
exact_similarity_join`, but sums the per-term products in shuffle
order rather than dict-iteration order, so scores can differ in the
last ulp — and a pair whose true score sits within an ulp of ``σ``
could in principle land on the other side of the threshold.  The
property tests draw weights from an exactly-representable grid, where
both summations are exact and the outputs are bit-identical.  Only
cross-side (item, consumer) pairs are produced — the modification of
the self-join algorithm described in §5.1.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Tuple

from ..mapreduce import (
    FileSystem,
    KeyValue,
    MapReduceJob,
    MapReduceRuntime,
    Pipeline,
)
from .prefix_filter import prefix_terms

__all__ = [
    "TermBoundsJob",
    "CandidateJob",
    "VerifyJob",
    "mapreduce_similarity_join",
    "similarity_join_pipeline",
]

ITEM_TAG = "T"
CONSUMER_TAG = "C"

JoinRow = Tuple[str, str, float]


class TermBoundsJob(MapReduceJob):
    """Job 1: per-term maximum weight over the consumer collection."""

    name = "simjoin-term-bounds"
    has_combiner = True

    def map(self, doc_id, tagged) -> Iterable[KeyValue]:
        tag, vector = tagged
        if tag == CONSUMER_TAG:
            for term, weight in vector.items():
                yield term, weight

    def combine(self, term, weights: List[float]) -> Iterable[KeyValue]:
        yield term, max(weights)

    def reduce(self, term, weights: List[float]) -> Iterable[KeyValue]:
        yield term, max(weights)


class CandidateJob(MapReduceJob):
    """Job 2: inverted index + per-term partial-score products.

    Side data: ``max_weights`` (output of job 1) and ``sigma``.

    Item postings are ``(tag, doc_id, weight, is_prefix)``; consumer
    postings are ``(tag, doc_id, weight)``.  Each term's reduce crosses
    the two sides and emits one ``(pair, (product, prefix_hit))``
    record per co-occurrence — the raw material VerifyJob sums into
    exact dot products.  Items that cannot reach ``sigma`` against any
    consumer (empty prefix) post nothing.
    """

    name = "simjoin-candidates"

    def map(self, doc_id, tagged) -> Iterable[KeyValue]:
        tag, vector = tagged
        if tag == ITEM_TAG:
            bounds = self.side_data["max_weights"]
            sigma = self.side_data["sigma"]
            prefix = set(prefix_terms(vector, bounds, sigma))
            if not prefix:
                return  # provably below sigma against every consumer
            for term, weight in vector.items():
                yield term, (ITEM_TAG, doc_id, weight, term in prefix)
        else:
            for term, weight in vector.items():
                yield term, (CONSUMER_TAG, doc_id, weight)

    def reduce(self, term, postings: List) -> Iterable[KeyValue]:
        items = sorted(
            (p[1], p[2], p[3]) for p in postings if p[0] == ITEM_TAG
        )
        consumers = sorted(
            (p[1], p[2]) for p in postings if p[0] == CONSUMER_TAG
        )
        for item, item_weight, is_prefix in items:
            hit = 1 if is_prefix else 0
            for consumer, consumer_weight in consumers:
                yield (item, consumer), (
                    item_weight * consumer_weight,
                    hit,
                )


class VerifyJob(MapReduceJob):
    """Job 3: sum the partial scores per pair and apply the threshold.

    Side data: ``sigma`` — a scalar, not the document stores.  Grouping
    by the pair key gathers every per-term product of that pair; the
    sum is the exact dot product.  The combiner pre-sums map-side
    (addition is associative and commutative), shrinking the shuffle to
    at most one record per pair per map task.  Pairs with no prefix
    co-occurrence are discarded — by the prefix-filter bound they are
    provably below ``sigma``, so this reproduces the pruned index's
    candidate set exactly.
    """

    name = "simjoin-verify"
    has_combiner = True

    def map(self, pair, partial) -> Iterable[KeyValue]:
        yield pair, partial

    def combine(self, pair, partials: List) -> Iterable[KeyValue]:
        score = 0.0
        prefix_hits = 0
        for product, hit in partials:
            score += product
            prefix_hits += hit
        yield pair, (score, prefix_hits)

    def reduce(self, pair, partials: List) -> Iterable[KeyValue]:
        score = 0.0
        prefix_hits = 0
        for product, hit in partials:
            score += product
            prefix_hits += hit
        if prefix_hits and score >= self.side_data["sigma"]:
            yield pair, score


def mapreduce_similarity_join(
    items: Mapping[str, Mapping[str, float]],
    consumers: Mapping[str, Mapping[str, float]],
    sigma: float,
    runtime: Optional[MapReduceRuntime] = None,
    filesystem: Optional[FileSystem] = None,
) -> List[JoinRow]:
    """Run the three-job pipeline; returns sorted ``(t, c, w)`` rows.

    The jobs are wired through the runtime's filesystem (see
    :func:`similarity_join_pipeline`), so a runtime built with
    ``storage="disk"`` runs the whole join out of core — inputs,
    intermediates, and the verified edges live on disk, and a
    ``spill_threshold`` additionally bounds the shuffle buffers.  The
    returned rows are bit-identical across storage backends, spill
    thresholds, and execution backends (scores may differ in the last
    ulp across *map task counts*, which change how the verify combiner
    groups the partial sums).

    On the default in-memory filesystem (no explicit ``filesystem``)
    the ``/simjoin/*`` datasets are deleted before returning, so this
    function retains no duplicate of the corpus in RAM — matching its
    pre-pipeline behavior.  On-disk datasets (or an explicitly passed
    filesystem) are kept for inspection; use
    :func:`similarity_join_pipeline` directly when you want the
    intermediates regardless of backend.
    """
    pipeline = similarity_join_pipeline(
        items, consumers, sigma, runtime=runtime, filesystem=filesystem
    )
    verified = pipeline.run()
    if filesystem is None and pipeline.filesystem.name == "memory":
        # Exactly the datasets this pipeline wrote — never a prefix
        # sweep, which could catch caller data under /simjoin/*.
        for path in (
            "/simjoin/documents",
            "/simjoin/term_bounds",
            "/simjoin/candidates",
            "/simjoin/edges",
        ):
            if pipeline.filesystem.exists(path):
                pipeline.filesystem.delete(path)
    rows = sorted(
        (item, consumer, weight)
        for (item, consumer), weight in verified
    )
    return rows


def similarity_join_pipeline(
    items: Mapping[str, Mapping[str, float]],
    consumers: Mapping[str, Mapping[str, float]],
    sigma: float,
    runtime: Optional[MapReduceRuntime] = None,
    filesystem: Optional[FileSystem] = None,
) -> Pipeline:
    """The three jobs, wired as a DFS-backed :class:`Pipeline`.

    This is the deployment shape of the computation: each stage reads
    and writes named datasets on the (simulated or on-disk) distributed
    filesystem — by default the runtime's own (``storage=`` at runtime
    construction) — so intermediate results — the term bounds under
    ``/simjoin/term_bounds``, the per-pair partial scores under
    ``/simjoin/candidates`` — are inspectable after the run.  Running
    the returned pipeline produces the verified edges at
    ``/simjoin/edges`` (and as ``Pipeline.run()``'s return value);
    output is identical to :func:`mapreduce_similarity_join`, which
    delegates here.

    No stage ships a document store as side data: job 2 reads the term
    bounds (one scalar per term) and job 3 only ``sigma`` — the corpus
    itself flows exclusively through datasets and the shuffle.
    """
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    pipeline = Pipeline(runtime=runtime, filesystem=filesystem)
    documents: List[KeyValue] = [
        (doc, (ITEM_TAG, vector)) for doc, vector in sorted(items.items())
    ] + [
        (doc, (CONSUMER_TAG, vector))
        for doc, vector in sorted(consumers.items())
    ]
    pipeline.filesystem.write(
        "/simjoin/documents", documents, overwrite=True
    )
    pipeline.add(
        TermBoundsJob(), ["/simjoin/documents"], "/simjoin/term_bounds"
    )
    pipeline.add(
        CandidateJob(),
        ["/simjoin/documents"],
        "/simjoin/candidates",
        side_data=lambda fs: {
            "max_weights": dict(fs.read("/simjoin/term_bounds")),
            "sigma": sigma,
        },
    )
    pipeline.add(
        VerifyJob(),
        ["/simjoin/candidates"],
        "/simjoin/edges",
        side_data=lambda fs: {"sigma": sigma},
    )
    return pipeline
