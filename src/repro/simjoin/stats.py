"""Collection statistics used by prefix filtering.

The pruned inverted index of Baraglia et al. needs, for every term, an
upper bound on the weight that term can contribute in the *other*
collection; :func:`max_term_weights` computes those bounds (and document
frequencies for diagnostics).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

__all__ = ["max_term_weights", "document_frequencies_of"]


def max_term_weights(
    vectors: Iterable[Mapping[str, float]],
) -> Dict[str, float]:
    """Per-term maximum weight over a collection of sparse vectors."""
    bounds: Dict[str, float] = {}
    for vector in vectors:
        for term, weight in vector.items():
            if weight > bounds.get(term, 0.0):
                bounds[term] = weight
    return bounds


def document_frequencies_of(
    vectors: Iterable[Mapping[str, float]],
) -> Dict[str, int]:
    """Per-term document frequency over a collection of sparse vectors."""
    df: Dict[str, int] = {}
    for vector in vectors:
        for term in vector:
            df[term] = df.get(term, 0) + 1
    return df
