"""High-level candidate-edge generation API.

:func:`candidate_edges` is the entry point the datasets and examples
use: given the item and consumer vector stores and the threshold ``σ``,
it returns the candidate edge list via the requested engine.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Tuple

from ..mapreduce import MapReduceRuntime
from .allpairs import exact_similarity_join, scipy_similarity_join
from .mr_join import mapreduce_similarity_join

__all__ = ["candidate_edges", "JOIN_METHODS"]

JoinRow = Tuple[str, str, float]

JOIN_METHODS = ("auto", "exact", "scipy", "mapreduce")

#: Above this many document pairs, "auto" switches to the scipy engine.
_AUTO_PAIR_THRESHOLD = 250_000


def candidate_edges(
    items: Mapping[str, Mapping[str, float]],
    consumers: Mapping[str, Mapping[str, float]],
    sigma: float,
    method: str = "auto",
    runtime: Optional[MapReduceRuntime] = None,
) -> List[JoinRow]:
    """All ``(item, consumer, weight)`` pairs with ``weight >= sigma``.

    ``method``:

    * ``"mapreduce"`` — the paper's pipeline (3 simulated jobs);
    * ``"exact"`` — pure-Python inverted-index accumulation;
    * ``"scipy"`` — blocked sparse matrix multiplication;
    * ``"auto"`` — ``exact`` for small inputs, ``scipy`` for large.

    All engines return identical output (tested).
    """
    if method not in JOIN_METHODS:
        raise ValueError(
            f"unknown join method {method!r}; known: {JOIN_METHODS}"
        )
    if method == "auto":
        pairs = len(items) * len(consumers)
        method = "scipy" if pairs > _AUTO_PAIR_THRESHOLD else "exact"
    if method == "exact":
        return exact_similarity_join(items, consumers, sigma)
    if method == "scipy":
        return scipy_similarity_join(items, consumers, sigma)
    return mapreduce_similarity_join(
        items, consumers, sigma, runtime=runtime
    )
