"""Centralized reference implementations of the bipartite similarity join.

Two exact engines:

* :func:`exact_similarity_join` — term-at-a-time score accumulation over
  an inverted index of the consumer collection; pure Python, the test
  oracle for the MapReduce join.
* :func:`scipy_similarity_join` — blocked sparse matrix multiplication
  (CSR), used by the dataset builders at benchmark scale.

Both return exactly the pairs ``(item, consumer, dot)`` with
``dot >= sigma``, sorted for determinism.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

__all__ = ["exact_similarity_join", "scipy_similarity_join"]

JoinRow = Tuple[str, str, float]


def exact_similarity_join(
    items: Mapping[str, Mapping[str, float]],
    consumers: Mapping[str, Mapping[str, float]],
    sigma: float,
) -> List[JoinRow]:
    """All cross-side pairs with dot product at least ``sigma``.

    Builds an inverted index over consumers, then accumulates each
    item's scores term-at-a-time — exact, no pruning.
    """
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    postings: Dict[str, List[Tuple[str, float]]] = {}
    for consumer, vector in consumers.items():
        for term, weight in vector.items():
            postings.setdefault(term, []).append((consumer, weight))
    rows: List[JoinRow] = []
    for item, vector in items.items():
        scores: Dict[str, float] = {}
        for term, weight in vector.items():
            for consumer, consumer_weight in postings.get(term, ()):
                scores[consumer] = (
                    scores.get(consumer, 0.0) + weight * consumer_weight
                )
        for consumer, score in scores.items():
            if score >= sigma:
                rows.append((item, consumer, score))
    rows.sort()
    return rows


def scipy_similarity_join(
    items: Mapping[str, Mapping[str, float]],
    consumers: Mapping[str, Mapping[str, float]],
    sigma: float,
    block_size: int = 4096,
) -> List[JoinRow]:
    """Exact join via blocked sparse matrix multiplication.

    Equivalent to :func:`exact_similarity_join` (cross-checked in the
    tests) but orders of magnitude faster at dataset scale.  Items are
    processed in row blocks of ``block_size`` to bound the memory of the
    intermediate product.
    """
    import numpy as np
    from scipy import sparse

    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    item_ids = sorted(items)
    consumer_ids = sorted(consumers)
    if not item_ids or not consumer_ids:
        return []
    vocabulary: Dict[str, int] = {}
    for collection in (items, consumers):
        for vector in collection.values():
            for term in vector:
                vocabulary.setdefault(term, len(vocabulary))

    def to_csr(ids: List[str], table: Mapping[str, Mapping[str, float]]):
        indptr = [0]
        indices: List[int] = []
        data: List[float] = []
        for doc in ids:
            vector = table[doc]
            for term, weight in vector.items():
                indices.append(vocabulary[term])
                data.append(weight)
            indptr.append(len(indices))
        return sparse.csr_matrix(
            (
                np.asarray(data, dtype=np.float64),
                np.asarray(indices, dtype=np.int64),
                np.asarray(indptr, dtype=np.int64),
            ),
            shape=(len(ids), len(vocabulary)),
        )

    item_matrix = to_csr(item_ids, items)
    consumer_matrix = to_csr(consumer_ids, consumers).T.tocsc()
    rows: List[JoinRow] = []
    for start in range(0, len(item_ids), block_size):
        block = item_matrix[start : start + block_size]
        product = (block @ consumer_matrix).tocoo()
        keep = product.data >= sigma
        for r, c, value in zip(
            product.row[keep], product.col[keep], product.data[keep]
        ):
            rows.append(
                (item_ids[start + int(r)], consumer_ids[int(c)], float(value))
            )
    rows.sort()
    return rows
