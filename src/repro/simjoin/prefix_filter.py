"""Prefix filtering for threshold dot-product joins (§5.1).

The candidate-edge step must find all item-consumer pairs with
``dot(v(t), v(c)) >= σ`` without materializing ``O(|T|·|C|)`` pairs.
Following Baraglia et al.'s scheme, we index only a *prefix* of each
item vector and probe the pruned index with full consumer vectors.

Correctness.  Let ``maxw(j)`` be the maximum weight of term ``j`` over
all consumer vectors, and split an item vector's terms into a prefix
``P`` and a suffix ``S`` such that

    Σ_{j∈S} w_t(j) · maxw(j)  <  σ.

For any consumer ``c`` sharing *no* prefix term with ``t``::

    dot(t, c) = Σ_{j∈S} w_t(j) · w_c(j) ≤ Σ_{j∈S} w_t(j) · maxw(j) < σ,

so every pair at or above the threshold shares at least one indexed
term.  The bound holds for *any* prefix/suffix split satisfying the
inequality, so we greedily put the largest-contribution terms in the
prefix, which minimizes the index size.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

__all__ = ["prefix_terms", "suffix_bound"]


def suffix_bound(
    vector: Mapping[str, float],
    max_weights: Mapping[str, float],
) -> float:
    """The optimistic dot-product bound ``Σ_j w(j)·maxw(j)``."""
    return sum(
        weight * max_weights.get(term, 0.0)
        for term, weight in vector.items()
    )


def prefix_terms(
    vector: Mapping[str, float],
    max_weights: Mapping[str, float],
    sigma: float,
) -> List[str]:
    """The terms of ``vector`` to index for threshold ``sigma``.

    Returns the shortest largest-contribution-first prefix whose
    complement's optimistic bound is below ``sigma``.  An empty list
    means the vector cannot reach ``sigma`` against any counterpart and
    can be skipped entirely.
    """
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    contributions = sorted(
        (
            (term, weight * max_weights.get(term, 0.0))
            for term, weight in vector.items()
        ),
        key=lambda item: (-item[1], item[0]),
    )
    tail = sum(contribution for _, contribution in contributions)
    if tail < sigma:
        return []
    prefix: List[str] = []
    for term, contribution in contributions:
        if tail < sigma:
            break
        prefix.append(term)
        tail -= contribution
    return prefix
