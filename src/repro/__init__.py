"""repro — reproduction of "Social Content Matching in MapReduce".

De Francisci Morales, Gionis, Sozio; PVLDB 4(7):460-469, 2011.

The package implements the paper's complete pipeline on an in-process
MapReduce simulator:

* :mod:`repro.mapreduce` — the Hadoop-substitute runtime;
* :mod:`repro.graph` — capacitated graphs, budgets, validation;
* :mod:`repro.text` — term vectors, tf·idf, similarities;
* :mod:`repro.simjoin` — candidate-edge generation (similarity join
  with prefix filtering, §5.1);
* :mod:`repro.matching` — GreedyMR, StackMR, StackGreedyMR, the
  centralized references, and exact solvers;
* :mod:`repro.datasets` — synthetic flickr-like / yahoo-answers-like
  workload generators (see DESIGN.md for the substitution rationale);
* :mod:`repro.experiments` — the harness regenerating every table and
  figure of the paper's evaluation.

Quickstart::

    from repro import BipartiteGraph, solve

    g = BipartiteGraph()
    g.add_item("photo", capacity=1)
    g.add_consumer("alice", capacity=2)
    g.add_edge("photo", "alice", 0.9)
    print(solve(g, "greedy_mr").value)
"""

from .graph import BipartiteGraph, Graph
from .mapreduce import MapReduceJob, MapReduceRuntime
from .matching import (
    Matching,
    MatchingResult,
    greedy_b_matching,
    greedy_mr_b_matching,
    solve,
    stack_b_matching,
    stack_mr_b_matching,
)

__version__ = "1.0.0"

__all__ = [
    "BipartiteGraph",
    "Graph",
    "MapReduceJob",
    "MapReduceRuntime",
    "Matching",
    "MatchingResult",
    "greedy_b_matching",
    "greedy_mr_b_matching",
    "solve",
    "stack_b_matching",
    "stack_mr_b_matching",
    "__version__",
]
