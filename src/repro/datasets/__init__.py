"""Synthetic stand-ins for the paper's flickr and Yahoo! Answers data.

Public surface::

    from repro.datasets import load_dataset
    dataset = load_dataset("flickr-small", seed=0, scale=0.2)
    graph = dataset.graph(sigma=2.0, alpha=2.0)

See DESIGN.md ("Substitutions") for why synthetic generators stand in
for the proprietary crawls and what shape properties they preserve.
"""

from .base import Dataset, TopicModel
from .flickr import flickr_dataset, flickr_large, flickr_small
from .registry import DATASETS, load_dataset
from .stats import Histogram, log_histogram, tail_summary
from .yahoo_answers import yahoo_answers, yahoo_answers_dataset
from .zipf import ZipfSampler, discrete_power_law

__all__ = [
    "DATASETS",
    "Dataset",
    "Histogram",
    "TopicModel",
    "ZipfSampler",
    "discrete_power_law",
    "flickr_dataset",
    "flickr_large",
    "flickr_small",
    "load_dataset",
    "log_histogram",
    "tail_summary",
    "yahoo_answers",
    "yahoo_answers_dataset",
]
