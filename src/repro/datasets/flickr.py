"""Synthetic flickr-like datasets (photos × users, tag vectors).

Stand-in for the paper's two flickr crawls (see DESIGN.md for the
substitution argument).  The generative process follows §6:

* each user ``u`` posts ``n(u)`` photos, with ``n(u)`` power-law
  distributed (this is both the activity proxy for ``b(u) = α·n(u)``
  and the source of the capacity skew in Figure 7);
* a photo is a bag of tags drawn from its owner's topic mixture; the
  photo vector is its tag-count vector;
* a user's vector aggregates the tags they used across their photos
  ("each user by the set of all tags he or she has used");
* each photo has a favorites count ``f(p)`` (power law), the quality
  proxy behind ``b(p) = f(p) · Σ_u α·n(u) / Σ_q f(q)``;
* edge weights are raw dot products of tag vectors, so similarities are
  integers ≥ 1 with a heavy tail, as in Figure 6.

``flickr_small`` defaults to the paper's actual scale (≈2.8k photos,
≈530 users).  ``flickr_large`` keeps the paper's *shape* — more skewed
activity and favorites — at ~1/30 of the node count so the suite runs
on one machine.
"""

from __future__ import annotations

import random
from typing import Optional

from .base import Dataset, TopicModel
from .zipf import discrete_power_law

__all__ = ["flickr_dataset", "flickr_small", "flickr_large"]


def flickr_dataset(
    name: str,
    num_photos: int,
    num_users: int,
    seed: int = 0,
    vocabulary_size: int = 600,
    num_topics: int = 12,
    tags_min: int = 3,
    tags_max: int = 10,
    activity_exponent: float = 2.2,
    activity_max: int = 60,
    favorites_exponent: float = 1.9,
    favorites_max: int = 500,
    follows_exponent: float = 2.0,
    follows_max: int = 40,
) -> Dataset:
    """Generate a flickr-like dataset of ``num_photos`` × ``num_users``.

    Photos are assigned to users proportionally to the users' power-law
    activity ``n(u)``; the recorded activity is the realized photo count
    so the §4 capacity formulas see a consistent world.

    A follow graph is generated alongside (each user follows a
    power-law number of producers, preferentially the active ones),
    enabling the §4 subscription-restricted candidate-edge scenario via
    :meth:`repro.datasets.base.Dataset.subscription_edges`.
    """
    rng = random.Random(seed)
    model = TopicModel(
        vocabulary_size=vocabulary_size,
        num_topics=num_topics,
        rng=rng,
    )
    users = [f"c{j:06d}" for j in range(num_users)]
    mixtures = {user: model.mixture() for user in users}
    weights = [
        discrete_power_law(
            rng, activity_exponent, minimum=1, maximum=activity_max
        )
        for _ in users
    ]

    # Deal photos to users proportionally to their sampled activity.
    owners = rng.choices(users, weights=weights, k=num_photos)
    items = {}
    consumers = {user: {} for user in users}
    activity = {user: 0.0 for user in users}
    quality = {}
    item_owner = {}
    for index, owner in enumerate(owners):
        photo = f"t{index:06d}"
        item_owner[photo] = owner
        num_tags = rng.randint(tags_min, tags_max)
        vector = model.document(mixtures[owner], num_tags)
        items[photo] = vector
        activity[owner] += 1.0
        profile = consumers[owner]
        for tag, count in vector.items():
            profile[tag] = profile.get(tag, 0.0) + count
        quality[photo] = float(
            discrete_power_law(
                rng, favorites_exponent, minimum=1, maximum=favorites_max
            )
        )

    # Users who happened to post nothing still browse: give them a
    # light profile and activity 1 (the paper's b(u) >= 1 floor).
    for user in users:
        if not consumers[user]:
            consumers[user] = model.document(mixtures[user], tags_max)
            activity[user] = 1.0

    # Follow graph: each user subscribes to a power-law number of
    # producers, preferentially the active ones (never themselves).
    subscriptions = {}
    for user in users:
        follow_count = min(
            discrete_power_law(
                rng, follows_exponent, minimum=1, maximum=follows_max
            ),
            num_users - 1,
        )
        followed = set()
        while len(followed) < follow_count:
            candidate = rng.choices(users, weights=weights, k=1)[0]
            if candidate != user:
                followed.add(candidate)
        subscriptions[user] = frozenset(followed)

    return Dataset(
        name=name,
        items=items,
        consumers=consumers,
        consumer_activity=activity,
        item_quality=quality,
        capacity_scheme="quality",
        item_owner=item_owner,
        subscriptions=subscriptions,
    )


def flickr_small(seed: int = 0, scale: float = 1.0) -> Dataset:
    """The flickr-small stand-in at the paper's own scale by default."""
    return flickr_dataset(
        "flickr-small",
        num_photos=max(10, int(2817 * scale)),
        num_users=max(5, int(526 * scale)),
        seed=seed,
    )


def flickr_large(seed: int = 0, scale: float = 1.0) -> Dataset:
    """The flickr-large stand-in (scaled ~1/30, heavier skew).

    The paper's flickr-large (373k photos / 33k users) differs from
    flickr-small in size *and* in its much more uneven capacity
    distribution — the property §6 blames for StackGreedyMR's quality
    dip and for the larger violations.  We keep that shape: higher
    activity/favorites variance and a larger tag space.
    """
    return flickr_dataset(
        "flickr-large",
        num_photos=max(10, int(12000 * scale)),
        num_users=max(5, int(1100 * scale)),
        seed=seed,
        vocabulary_size=1500,
        num_topics=20,
        activity_exponent=1.7,
        activity_max=400,
        favorites_exponent=1.6,
        favorites_max=5000,
    )
