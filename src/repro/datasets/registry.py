"""Named dataset registry used by the harness, benches, and examples."""

from __future__ import annotations

from typing import Callable, Dict

from .base import Dataset
from .flickr import flickr_large, flickr_small
from .yahoo_answers import yahoo_answers

__all__ = ["DATASETS", "load_dataset"]

#: Builders for the three datasets of the paper's evaluation.
DATASETS: Dict[str, Callable[..., Dataset]] = {
    "flickr-small": flickr_small,
    "flickr-large": flickr_large,
    "yahoo-answers": yahoo_answers,
}


def load_dataset(name: str, seed: int = 0, scale: float = 1.0) -> Dataset:
    """Build the named dataset (``scale`` shrinks it for quick runs).

    >>> d = load_dataset("flickr-small", scale=0.05)
    >>> d.num_items > 0 and d.num_consumers > 0
    True
    """
    try:
        builder = DATASETS[name]
    except KeyError:
        known = ", ".join(sorted(DATASETS))
        raise ValueError(
            f"unknown dataset {name!r}; known: {known}"
        ) from None
    return builder(seed=seed, scale=scale)
