"""Dataset containers and the shared topic-model text generator.

A :class:`Dataset` bundles the item and consumer vector stores with the
application signals the paper derives capacities from (§4): consumer
activity ``n(u)`` and item quality ``f(p)``.  It exposes

* ``edges(sigma)`` — the candidate-edge list (cached: the join runs once
  at the smallest σ requested and is filtered for larger σ, which is how
  the σ-sweep experiments stay cheap);
* ``graph(sigma, alpha)`` — the full Problem-1 instance, with the
  paper's capacity formulas applied;
* σ-selection helpers used by the edge-count sweeps of Figures 1–3.

Documents are produced by a small topic model: each *topic* is a Zipf
distribution over a permuted vocabulary, each *author* draws a Dirichlet
topic mixture, and each document samples its tokens topic-first.  This
yields the overlapping-interest structure that makes the similarity
distributions heavy-tailed, as in the paper's Figure 6.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..graph.bipartite import BipartiteGraph
from ..graph.capacities import (
    activity_capacities,
    quality_item_capacities,
    total_bandwidth,
    uniform_item_capacities,
)
from ..simjoin.api import candidate_edges
from ..text.vectors import TermVector
from .zipf import ZipfSampler

__all__ = ["Dataset", "TopicModel"]

JoinRow = Tuple[str, str, float]


class TopicModel:
    """A seeded topic-mixture generator over a synthetic vocabulary."""

    def __init__(
        self,
        vocabulary_size: int,
        num_topics: int,
        zipf_exponent: float = 1.05,
        mixture_concentration: float = 0.25,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.rng = rng or random.Random(0)
        self.vocabulary = [f"w{i}" for i in range(vocabulary_size)]
        self.num_topics = num_topics
        self.concentration = mixture_concentration
        self._sampler = ZipfSampler(vocabulary_size, zipf_exponent)
        # Each topic re-ranks the vocabulary with its own permutation.
        self._topic_orders: List[List[int]] = []
        base = list(range(vocabulary_size))
        for _ in range(num_topics):
            order = base[:]
            self.rng.shuffle(order)
            self._topic_orders.append(order)

    def mixture(self) -> List[float]:
        """Draw a Dirichlet topic mixture for an author."""
        draws = [
            self.rng.gammavariate(self.concentration, 1.0)
            for _ in range(self.num_topics)
        ]
        total = sum(draws) or 1.0
        return [draw / total for draw in draws]

    def document(
        self, mixture: Sequence[float], length: int
    ) -> TermVector:
        """Sample a document of ``length`` tokens from ``mixture``."""
        counts: Dict[str, float] = {}
        cumulative: List[float] = []
        running = 0.0
        for probability in mixture:
            running += probability
            cumulative.append(running)
        for _ in range(length):
            pick = self.rng.random() * running
            topic = 0
            while cumulative[topic] < pick:
                topic += 1
            rank = self._sampler.sample(self.rng)
            word = self.vocabulary[self._topic_orders[topic][rank]]
            counts[word] = counts.get(word, 0.0) + 1.0
        return counts


@dataclass
class Dataset:
    """A synthetic stand-in for one of the paper's three datasets.

    ``item_owner`` and ``subscriptions`` are populated by generators
    that model a social graph (the flickr stand-ins) and power the §4
    subscription-restricted candidate-edge scenario; they stay empty
    for corpora without a follow graph.
    """

    name: str
    items: Dict[str, TermVector]
    consumers: Dict[str, TermVector]
    consumer_activity: Dict[str, float]
    item_quality: Dict[str, float] = field(default_factory=dict)
    capacity_scheme: str = "quality"  # "quality" (flickr) or "uniform"
    join_method: str = "auto"
    item_owner: Dict[str, str] = field(default_factory=dict)
    subscriptions: Dict[str, frozenset] = field(default_factory=dict)
    _edge_cache_sigma: Optional[float] = field(default=None, repr=False)
    _edge_cache: List[JoinRow] = field(default_factory=list, repr=False)

    @property
    def num_items(self) -> int:
        """|T| — number of items."""
        return len(self.items)

    @property
    def num_consumers(self) -> int:
        """|C| — number of consumers."""
        return len(self.consumers)

    # -- candidate edges -----------------------------------------------------

    def edges(self, sigma: float, method: Optional[str] = None) -> List[JoinRow]:
        """Candidate edges at threshold ``sigma`` (cached, see above)."""
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        if self._edge_cache_sigma is None or sigma < self._edge_cache_sigma:
            self._edge_cache = candidate_edges(
                self.items,
                self.consumers,
                sigma,
                method=method or self.join_method,
            )
            self._edge_cache_sigma = sigma
        return [row for row in self._edge_cache if row[2] >= sigma]

    def similarity_values(self, floor_sigma: float) -> List[float]:
        """All similarities at least ``floor_sigma`` (for Figure 6)."""
        return [weight for _, _, weight in self.edges(floor_sigma)]

    def sigma_for_edge_count(
        self, target_edges: int, floor_sigma: float
    ) -> float:
        """The threshold yielding approximately ``target_edges`` edges.

        The Figures 1–3 sweeps are parameterized by the *number of
        edges* on the x-axis; this inverts the similarity distribution
        to find the matching σ.
        """
        weights = sorted(self.similarity_values(floor_sigma), reverse=True)
        if not weights:
            return floor_sigma
        if target_edges >= len(weights):
            return floor_sigma
        return weights[max(target_edges - 1, 0)]

    # -- problem instances ------------------------------------------------------

    def capacities(
        self, alpha: float
    ) -> Tuple[Dict[str, int], Dict[str, int]]:
        """Item and consumer capacities per the paper's §4/§6 formulas."""
        consumer_caps = activity_capacities(self.consumer_activity, alpha)
        bandwidth = total_bandwidth(consumer_caps)
        if self.capacity_scheme == "quality":
            item_caps = quality_item_capacities(
                {item: self.item_quality.get(item, 0.0) for item in self.items},
                bandwidth,
            )
        elif self.capacity_scheme == "uniform":
            item_caps = uniform_item_capacities(self.items, bandwidth)
        else:
            raise ValueError(
                f"unknown capacity scheme {self.capacity_scheme!r}"
            )
        return item_caps, consumer_caps

    def graph(
        self,
        sigma: float,
        alpha: float,
        method: Optional[str] = None,
    ) -> BipartiteGraph:
        """Build the Problem-1 instance at ``(sigma, alpha)``."""
        item_caps, consumer_caps = self.capacities(alpha)
        return BipartiteGraph.from_edges(
            self.edges(sigma, method=method), item_caps, consumer_caps
        )

    def subscription_edges(
        self, sigma: float = 0.0, method: Optional[str] = None
    ) -> List[JoinRow]:
        """Candidate edges restricted to subscribed producer-consumer
        pairs (§4's social-network scenario).

        Requires the generator to have recorded ``item_owner`` and
        ``subscriptions``; raises otherwise rather than silently
        returning the unrestricted edges.
        """
        if not self.item_owner or not self.subscriptions:
            raise ValueError(
                f"dataset {self.name!r} has no subscription graph"
            )
        from ..simjoin.subscriptions import subscription_join

        return subscription_join(
            self.items,
            self.consumers,
            self.item_owner,
            self.subscriptions,
            sigma=sigma,
        )

    def subscription_graph(
        self, alpha: float, sigma: float = 0.0
    ) -> BipartiteGraph:
        """The Problem-1 instance over subscription-restricted edges."""
        item_caps, consumer_caps = self.capacities(alpha)
        return BipartiteGraph.from_edges(
            self.subscription_edges(sigma), item_caps, consumer_caps
        )

    def table1_row(self, sigma: float) -> Dict[str, int]:
        """|T|, |C|, |E| — the dataset-characteristics row of Table 1."""
        return {
            "items": self.num_items,
            "consumers": self.num_consumers,
            "edges": len(self.edges(sigma)),
        }
