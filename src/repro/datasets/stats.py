"""Distribution statistics for the Figure 6 / Figure 7 reproductions.

Figure 6 plots the distribution of edge similarities, Figure 7 the
distribution of capacities, for each dataset.  These helpers compute
log-binned histograms plus tail summaries (skew diagnostics used by the
shape checks in EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..telemetry.metrics import percentile

__all__ = ["Histogram", "log_histogram", "tail_summary"]

Bin = Tuple[float, float, int]


@dataclass
class Histogram:
    """A log-binned histogram with basic moments."""

    bins: List[Bin]
    count: int
    mean: float
    maximum: float

    def rows(self) -> List[Tuple[str, int]]:
        """Human-readable ``[lo, hi) -> count`` rows."""
        return [
            (f"[{lo:.3g}, {hi:.3g})", count) for lo, hi, count in self.bins
        ]


def log_histogram(values: Sequence[float], num_bins: int = 12) -> Histogram:
    """Histogram ``values > 0`` into geometrically spaced bins."""
    positives = [v for v in values if v > 0]
    if not positives:
        return Histogram(bins=[], count=0, mean=0.0, maximum=0.0)
    low = min(positives)
    high = max(positives)
    if high <= low:
        bins = [(low, high, len(positives))]
        return Histogram(
            bins=bins,
            count=len(positives),
            mean=sum(positives) / len(positives),
            maximum=high,
        )
    ratio = (high / low) ** (1.0 / num_bins)
    edges = [low * ratio**i for i in range(num_bins + 1)]
    edges[-1] = high * (1 + 1e-12)  # include the maximum
    counts = [0] * num_bins
    for value in positives:
        index = min(
            int(math.log(value / low) / math.log(ratio)), num_bins - 1
        )
        counts[index] += 1
    bins = [
        (edges[i], edges[i + 1], counts[i]) for i in range(num_bins)
    ]
    return Histogram(
        bins=bins,
        count=len(positives),
        mean=sum(positives) / len(positives),
        maximum=high,
    )


def tail_summary(values: Sequence[float]) -> Dict[str, float]:
    """Quantiles + top-share diagnostics of a heavy-tailed sample.

    ``top1_share`` (fraction of total mass held by the top 1% of
    values) is the skew statistic used to compare flickr-small versus
    flickr-large capacity distributions.  Quantiles use the shared
    nearest-rank :func:`~repro.telemetry.metrics.percentile` — the
    same convention as the serving latency percentiles.
    """
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return {}
    total = sum(ordered)
    top1 = ordered[int(0.99 * n) :]
    return {
        "min": ordered[0],
        "p50": percentile(ordered, 0.50),
        "p90": percentile(ordered, 0.90),
        "p99": percentile(ordered, 0.99),
        "max": ordered[-1],
        "mean": total / n,
        "top1_share": (sum(top1) / total) if total else 0.0,
    }
