"""Synthetic Yahoo!-Answers-like dataset (questions × answerers).

Stand-in for the paper's yahoo-answers crawl (DESIGN.md).  Following §6:

* consumers are users; ``n(u)`` (number of answers, power law) proxies
  their activity and sets ``b(u) = α·n(u)``;
* items are open questions; every question gets the same budget
  ``b(q) = Σ_u α·n(u) / |Q|`` (the paper's "constant capacity for all
  questions, in order to test our algorithm under different settings");
* question and user texts are produced by the topic model, then
  stop-word-free tokens are tf·idf-weighted (both collections share one
  idf scale, as in "we treat questions similarly");
* edge weights are dot products of the tf·idf vectors, giving the
  continuous heavy-tailed similarity distribution of Figure 6.
"""

from __future__ import annotations

import random
from typing import Dict

from ..text.tfidf import TfIdfModel
from ..text.vectors import TermVector
from .base import Dataset, TopicModel
from .zipf import discrete_power_law

__all__ = ["yahoo_answers_dataset", "yahoo_answers"]


def yahoo_answers_dataset(
    name: str,
    num_questions: int,
    num_users: int,
    seed: int = 0,
    vocabulary_size: int = 2000,
    num_topics: int = 25,
    question_length_min: int = 8,
    question_length_max: int = 30,
    answer_length: int = 20,
    activity_exponent: float = 1.9,
    activity_max: int = 120,
) -> Dataset:
    """Generate a yahoo-answers-like dataset."""
    rng = random.Random(seed)
    model = TopicModel(
        vocabulary_size=vocabulary_size,
        num_topics=num_topics,
        rng=rng,
    )

    raw_questions: Dict[str, TermVector] = {}
    for index in range(num_questions):
        mixture = model.mixture()
        length = rng.randint(question_length_min, question_length_max)
        raw_questions[f"t{index:06d}"] = model.document(mixture, length)

    raw_users: Dict[str, TermVector] = {}
    activity: Dict[str, float] = {}
    for index in range(num_users):
        user = f"c{index:06d}"
        mixture = model.mixture()
        answers = discrete_power_law(
            rng, activity_exponent, minimum=1, maximum=activity_max
        )
        profile: TermVector = {}
        for _ in range(answers):
            answer = model.document(mixture, answer_length)
            for word, count in answer.items():
                profile[word] = profile.get(word, 0.0) + count
        raw_users[user] = profile
        activity[user] = float(answers)

    # One shared idf scale over both collections (questions + profiles).
    tfidf = TfIdfModel.fit(
        list(raw_questions.values()) + list(raw_users.values())
    )
    questions = {
        doc: tfidf.transform(vector)
        for doc, vector in raw_questions.items()
    }
    users = {
        doc: tfidf.transform(vector) for doc, vector in raw_users.items()
    }

    return Dataset(
        name=name,
        items=questions,
        consumers=users,
        consumer_activity=activity,
        item_quality={},
        capacity_scheme="uniform",
    )


def yahoo_answers(seed: int = 0, scale: float = 1.0) -> Dataset:
    """The yahoo-answers stand-in (scaled ~1/1000 of the crawl)."""
    return yahoo_answers_dataset(
        "yahoo-answers",
        num_questions=max(10, int(4800 * scale)),
        num_users=max(5, int(1150 * scale)),
        seed=seed,
    )
