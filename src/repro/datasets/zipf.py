"""Heavy-tailed samplers for the synthetic workload generators.

The paper's datasets exhibit power-law shapes everywhere (Figures 6–7):
tag/word frequencies, user activity, photo favorites.  These samplers
produce the same shapes with seeded, pure-Python randomness.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Optional, Sequence

__all__ = ["ZipfSampler", "discrete_power_law"]


class ZipfSampler:
    """Sample ranks ``0..n-1`` with ``P(r) ∝ 1/(r+1)^s``.

    Cumulative weights are precomputed once; each draw is a binary
    search, so sampling a million tokens is cheap.
    """

    def __init__(self, n: int, exponent: float = 1.1) -> None:
        if n < 1:
            raise ValueError(f"need at least one rank, got {n}")
        if exponent <= 0:
            raise ValueError(f"exponent must be positive, got {exponent}")
        self.n = n
        self.exponent = exponent
        cumulative: List[float] = []
        total = 0.0
        for rank in range(n):
            total += 1.0 / (rank + 1) ** exponent
        # store normalized cumulative probabilities
        running = 0.0
        for rank in range(n):
            running += (1.0 / (rank + 1) ** exponent) / total
            cumulative.append(running)
        cumulative[-1] = 1.0
        self._cumulative = cumulative

    def sample(self, rng: random.Random) -> int:
        """Draw one rank."""
        return bisect.bisect_left(self._cumulative, rng.random())

    def sample_many(self, rng: random.Random, k: int) -> List[int]:
        """Draw ``k`` ranks independently."""
        cumulative = self._cumulative
        return [
            bisect.bisect_left(cumulative, rng.random()) for _ in range(k)
        ]


def discrete_power_law(
    rng: random.Random,
    exponent: float,
    minimum: int = 1,
    maximum: Optional[int] = None,
) -> int:
    """One draw from a discrete Pareto tail: ``P(X >= x) ∝ x^{1-exponent}``.

    Uses inverse-transform sampling of the continuous Pareto floored to
    an integer; ``maximum`` caps the tail (resampling by clipping) so a
    single user cannot swallow an entire synthetic corpus.
    """
    if exponent <= 1.0:
        raise ValueError(f"exponent must exceed 1, got {exponent}")
    if minimum < 1:
        raise ValueError(f"minimum must be >= 1, got {minimum}")
    u = rng.random()
    value = int(minimum * (1.0 - u) ** (-1.0 / (exponent - 1.0)))
    value = max(minimum, value)
    if maximum is not None:
        value = min(value, maximum)
    return value
