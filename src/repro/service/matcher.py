"""Incremental GreedyMR: re-converge only what an event batch touched.

:class:`OnlineMatcher` keeps two :class:`~repro.mapreduce.state.
ResidentStateStore`\\ s alive across MapReduce jobs, both created once
through :meth:`~repro.mapreduce.runtime.MapReduceRuntime.state_store`
and aligned with the runtime's shuffle partitioning:

* the **graph store** — the authoritative candidate graph, one
  ``node -> (capacity, {neighbor: weight})`` record per live node.
  This is the store that stays *populated* between flushes: past the
  runtime's spill threshold it parks out-of-core, and per-event
  admission then flows through the store's single-key apply path
  (:meth:`~repro.mapreduce.state.ResidentStateStore.put` /
  ``discard`` overlays, :meth:`~repro.mapreduce.state.
  ResidentStateStore.get` point reads) — touching one key never
  reloads a parked partition;
* the **match store** — GreedyMR's working records, seeded from the
  perturbed keys each flush and drained by frontier rounds
  (:meth:`~repro.mapreduce.runtime.MapReduceRuntime.run_stateful`
  from an externally-owned store).

Correctness anchor — *why incremental equals cold batch*
--------------------------------------------------------

Greedy b-matching decomposes exactly over the connected components of
the **eligible subgraph** (edges whose two endpoints both have positive
capacity): whether an edge is matched depends only on the strict total
edge order restricted to its own component, never on other components.
The matcher exploits this:

1. every event *seeds* the nodes whose eligible adjacency it may have
   changed (an arrival and its edge endpoints; both endpoints of a new
   edge; a retuned node and its neighbors; a retiree's former
   neighbors);
2. the **affected set** is the union of the final graph's eligible
   components containing a live seed (plus live-but-ineligible seeds,
   whose stale matches must drop);
3. affected nodes' matched edges are dropped and fresh
   :class:`~repro.matching.greedy_mr.GreedyDeltaNode` records are
   re-seeded from the final graph — a matched edge never crosses out of
   the affected set, because any neighbor it could reach is either in
   the same eligible component (hence affected) or had its adjacency
   changed (hence seeded);
4. GreedyMR frontier rounds run from exactly those seeds until the
   delta stream drains.  Unaffected components are never messaged, so
   their state partitions are never even loaded.

The re-converged matching therefore equals a cold-batch GreedyMR run on
the final graph — same edges, same weights — for *any* event sequence
(property-tested across executors × filesystems in
``tests/service/test_matcher.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..graph import Graph
from ..mapreduce import MapReduceRuntime, canonical_bytes
from ..mapreduce.errors import RoundLimitExceeded
from ..mapreduce.faults import (
    FAULT_COUNTER_GROUP,
    InjectedFault,
    PoisonedEvent,
)
from ..telemetry.metrics import TIMING_BUCKETS
from ..matching.greedy_mr import GreedyDeltaNode, GreedyDeltaRoundJob
from .events import (
    Arrival,
    CapacityChange,
    EdgeArrival,
    Event,
    EventError,
    Retirement,
    plain_graph,
)

__all__ = ["FlushReport", "OnlineMatcher", "SERVICE_COUNTER_GROUP"]

#: Counter group the matcher meters into (on the runtime's counters).
SERVICE_COUNTER_GROUP = "service"

#: One resident graph record: ``(capacity, {neighbor: weight})``.
NodeRecord = Tuple[int, Dict[str, float]]


@dataclass(frozen=True)
class FlushReport:
    """What one micro-batch flush did.

    ``dead_lettered`` counts the batch's events that sit in the
    matcher's dead-letter queue after the flush — events whose
    admission kept failing transiently until their retry budget ran
    out (they are *not* in ``rejected``, which is for deterministic
    validation failures).
    """

    admitted: int
    rejected: Tuple[Tuple[Event, str], ...]
    affected_nodes: int
    rounds: int
    seconds: float
    dead_lettered: int = 0


class OnlineMatcher:
    """The synchronous engine under the asyncio service facade.

    Parameters
    ----------
    runtime:
        The simulated cluster every re-convergence runs on (fresh
        default if omitted).  Both resident stores are created through
        it, so admission and frontier rounds follow its backend /
        storage / spill-threshold configuration.
    graph:
        Optional bootstrap graph (a :class:`~repro.graph.
        BipartiteGraph` is accepted; sides are not needed for events).
        Its records are loaded into the graph store — the caller's
        graph is never referenced afterwards.
    """

    def __init__(
        self,
        runtime: Optional[MapReduceRuntime] = None,
        graph: Optional[Graph] = None,
    ) -> None:
        self.runtime = runtime or MapReduceRuntime()
        self.graph_store = self.runtime.state_store("serve-graph")
        self.match_store = self.runtime.state_store("serve-matching")
        self._job = GreedyDeltaRoundJob()
        self._partners: Dict[str, Dict[str, float]] = {}
        self._num_edges = 0
        #: Per-flush read cache over the graph store: point reads on a
        #: parked partition scan its file, so each flush remembers the
        #: records it already fetched (cleared at flush end to keep the
        #: driver's footprint bounded by the affected neighborhood).
        self._cache: Dict[str, Optional[NodeRecord]] = {}
        #: Wall-clock of every event-batch flush, as a volatile
        #: sample-keeping histogram on the runtime's registry
        #: (diagnostic, like the phase gauges — never part of the
        #: determinism contract).  ``flush_seconds`` below exposes the
        #: raw samples in flush order.
        self._flush_hist = self.runtime.metrics.histogram(
            SERVICE_COUNTER_GROUP,
            "flush_seconds",
            TIMING_BUCKETS,
            volatile=True,
            keep_samples=True,
        )
        #: Recovery configuration piggybacks on the runtime's: the
        #: same retry budget that re-executes tasks also re-admits
        #: faulted flush attempts, and the same fault plan injects
        #: poisoned events / mid-reconvergence faults.
        self._retry_policy = self.runtime.retry_policy
        self._fault_plan = self.runtime.fault_plan
        #: Events whose admission kept failing *transiently* until the
        #: retry budget ran out, with the reason — the dead-letter
        #: queue.  Deterministic validation failures never land here
        #: (those are ``rejected`` in the flush report).
        self.dead_letters: List[Tuple[Event, str]] = []
        self._dead_set: Set[int] = set()
        #: Admission sequence numbers: the global position of a batch's
        #: first event.  Only *committed* flushes advance it, so a
        #: re-admitted batch reuses the same sequence numbers — fault
        #: identity (poisoning, dead-lettering) is per event, not per
        #: attempt.
        self._event_seq = 0
        self._event_attempts: Dict[int, int] = {}
        self._flush_index = 0
        #: Open-transaction snapshot of the driver-side matching state
        #: (``None`` outside a flush).
        self._txn_matching: Optional[
            Tuple[Dict[str, Dict[str, float]], int]
        ] = None
        bootstrap = plain_graph(graph)
        if bootstrap.num_nodes:
            self._num_edges = bootstrap.num_edges
            self.graph_store.load(
                (node, (bootstrap.capacity(node),
                        dict(bootstrap.incident(node))))
                for node in sorted(bootstrap.nodes())
            )
            rounds = self._reconverge(set(bootstrap.nodes()))
            self._meter("bootstrap.rounds", rounds)
            self._end_flush()

    # -- graph-store access ------------------------------------------------

    def _node(self, node: str) -> Optional[NodeRecord]:
        """The node's graph record via the per-flush read cache."""
        try:
            return self._cache[node]
        except KeyError:
            record = self.graph_store.get(node)
            self._cache[node] = record
            return record

    def _put_node(self, node: str, record: NodeRecord) -> None:
        self.graph_store.put(canonical_bytes(node), node, record)
        self._cache[node] = record

    def _discard_node(self, node: str) -> None:
        self.graph_store.discard(canonical_bytes(node), node)
        self._cache[node] = None

    def _end_flush(self) -> None:
        self._cache.clear()
        # Both stores follow the runtime's spill threshold between
        # flushes: the graph store parks its (populated) partitions,
        # so the next batch's admission exercises the single-key path.
        self.graph_store.maybe_park()
        self.match_store.maybe_park()

    # -- transactional flush ----------------------------------------------

    def _begin_flush_txn(self) -> None:
        """Snapshot everything a failed flush attempt must restore.

        Both resident stores open a transaction (shallow snapshots;
        parked files are left untouched until commit), and the
        driver-side matching (``_partners`` + the edge count) is
        copied two levels deep — the inner partner dicts mutate in
        place during re-convergence.
        """
        self.graph_store.begin_transaction()
        self.match_store.begin_transaction()
        self._txn_matching = (
            {node: dict(peers) for node, peers in self._partners.items()},
            self._num_edges,
        )

    def _commit_flush_txn(self) -> None:
        self.graph_store.commit_transaction()
        self.match_store.commit_transaction()
        self._txn_matching = None

    def _rollback_flush_txn(self) -> None:
        self.graph_store.rollback_transaction()
        self.match_store.rollback_transaction()
        assert self._txn_matching is not None
        self._partners, self._num_edges = self._txn_matching
        self._txn_matching = None
        # The read cache may hold rolled-back records.
        self._cache.clear()

    def flush(self, events: List[Event]) -> FlushReport:
        """Admit one micro-batch and re-converge once for all of it.

        Events apply in order; an invalid event is rejected (reported
        with its reason) without disturbing the rest of the batch or
        leaving partial state behind.  All admitted events share a
        single incremental re-convergence — the coalescing the
        service's micro-batching exists to buy.

        The flush is **transactional**: a transient failure anywhere —
        admission, re-convergence rounds, storage — rolls the graph
        and match stores and the driver-side matching back to their
        pre-flush state, and the whole batch re-admits on the next
        attempt (budgeted by the runtime's
        :class:`~repro.mapreduce.faults.RetryPolicy`; one attempt
        without a policy).  An event that keeps failing transiently is
        dead-lettered after its per-event budget rather than poisoning
        the batch forever (see :attr:`dead_letters`); deterministic
        failures still reject immediately.  When every attempt fails,
        the last exception propagates — with the stores still at the
        pre-flush state.
        """
        policy = self._retry_policy
        max_attempts = policy.max_attempts if policy is not None else 1
        started = time.perf_counter()
        attempt = 0
        while True:
            self._begin_flush_txn()
            try:
                report = self._flush_once(events, attempt, max_attempts)
            except PoisonedEvent:
                # A poisoned event consumes *its own* per-event budget
                # (tracked in ``_event_attempts``), not the flush's:
                # a batch with several poisoned events may roll back
                # more times than max_attempts before each has been
                # retried to death and dead-lettered.  Termination is
                # still bounded — every pass increments some event's
                # attempt counter, and saturated events stop raising.
                self._rollback_flush_txn()
                continue
            except (InjectedFault, OSError):
                self._rollback_flush_txn()
                self._meter_fault("flush.retries")
                attempt += 1
                if attempt >= max_attempts:
                    raise
                delay = policy.retry_delay(attempt) if policy else 0.0
                if delay:
                    time.sleep(delay)
                continue
            except BaseException:
                # Non-retryable (validation bugs, round-limit blowups):
                # still leave consistent pre-flush state behind.
                self._rollback_flush_txn()
                raise
            self._commit_flush_txn()
            break
        self._event_seq += len(events)
        self._flush_index += 1
        seconds = time.perf_counter() - started
        self._flush_hist.observe(seconds)
        self._meter("events.admitted", report.admitted)
        self._meter("events.rejected", len(report.rejected))
        self._meter("batches.flushed", 1)
        self._meter("reconverge.rounds", report.rounds)
        self._meter("reconverge.affected_nodes", report.affected_nodes)
        return FlushReport(
            admitted=report.admitted,
            rejected=report.rejected,
            affected_nodes=report.affected_nodes,
            rounds=report.rounds,
            seconds=seconds,
            dead_lettered=report.dead_lettered,
        )

    def _flush_once(
        self, events: List[Event], attempt: int, max_attempts: int
    ) -> FlushReport:
        """One flush attempt inside an open transaction."""
        plan = self._fault_plan
        admitted = 0
        rejected: List[Tuple[Event, str]] = []
        seeds: Set[str] = set()
        retired: Set[str] = set()
        with self.runtime._span("flush", kind="flush", events=len(events)):
            stage_started = time.perf_counter()
            with self.runtime._span("admit", kind="stage"):
                for offset, event in enumerate(events):
                    sequence = self._event_seq + offset
                    if sequence in self._dead_set:
                        continue
                    if plan is not None and plan.event_poisoned(sequence):
                        self._admission_fault(event, sequence, max_attempts)
                        continue
                    try:
                        seeds |= self._admit(event, retired)
                    except EventError as exc:
                        rejected.append((event, str(exc)))
                        continue
                    admitted += 1
            self._stage_gauge("admit").add(
                time.perf_counter() - stage_started
            )
            stage_started = time.perf_counter()
            inject = plan is not None and plan.flush_fault(
                self._flush_index, attempt
            )
            with self.runtime._span("reconverge", kind="stage"):
                affected = self._affected(seeds)
                rounds = self._reconverge(
                    affected, retired, inject_fault=inject
                )
            self._stage_gauge("reconverge").add(
                time.perf_counter() - stage_started
            )
            self._end_flush()
        dead = sum(
            1
            for offset in range(len(events))
            if self._event_seq + offset in self._dead_set
        )
        return FlushReport(
            admitted=admitted,
            rejected=tuple(rejected),
            affected_nodes=len(affected),
            rounds=rounds,
            seconds=0.0,  # the committed report carries the real time
            dead_lettered=dead,
        )

    def _admission_fault(
        self, event: Event, sequence: int, max_attempts: int
    ) -> None:
        """Handle one poisoned admission: retry or dead-letter.

        Raises :class:`PoisonedEvent` (failing the whole attempt, so
        the transaction rolls back and the batch re-admits) until the
        event's per-event budget is spent, then routes it to the
        dead-letter queue — subsequent attempts skip it via
        ``_dead_set`` and the rest of the batch goes through.
        """
        self._meter_fault("injected_poison")
        self._meter_fault("injected_total")
        attempts = self._event_attempts.get(sequence, 0) + 1
        self._event_attempts[sequence] = attempts
        if attempts >= max_attempts:
            self._dead_set.add(sequence)
            self.dead_letters.append(
                (
                    event,
                    f"admission failed transiently {attempts}x "
                    f"(event seq {sequence})",
                )
            )
            self._meter_fault("events.dead_lettered")
            return
        raise PoisonedEvent(
            f"injected admission fault for event seq {sequence} "
            f"(attempt {attempts})"
        )

    def _meter_fault(self, name: str, value: int = 1) -> None:
        self.runtime.counters.increment(FAULT_COUNTER_GROUP, name, value)

    # -- event admission ---------------------------------------------------

    def _admit(self, event: Event, retired: Set[str]) -> Set[str]:
        """Validate + apply one event to the graph store; return seeds.

        Validation is all-or-nothing: every check precedes the first
        write, so a rejected event leaves no partial state.  The seed
        rule: every node whose *eligible adjacency* the event may
        change must be seeded (see the module docstring).
        """
        if isinstance(event, Arrival):
            _require(not self.graph_store.contains(event.node),
                     f"arrival of existing node {event.node!r}")
            _require(event.capacity >= 0,
                     "arrival capacity must be >= 0, got "
                     f"{event.capacity}")
            seen: Set[str] = set()
            for neighbor, weight in event.edges:
                _require(neighbor != event.node,
                         f"arrival {event.node!r} carries a self-loop")
                _require(neighbor not in seen,
                         f"arrival {event.node!r} repeats edge to "
                         f"{neighbor!r}")
                seen.add(neighbor)
                _require(self.graph_store.contains(neighbor),
                         f"arrival {event.node!r} references unknown "
                         f"neighbor {neighbor!r}")
                _require(weight > 0,
                         f"edge weights must be positive, got {weight}")
            self._put_node(
                event.node, (event.capacity, dict(event.edges))
            )
            for neighbor, weight in event.edges:
                capacity, adj = self._node(neighbor)
                self._put_node(
                    neighbor,
                    (capacity, {**adj, event.node: weight}),
                )
            self._num_edges += len(event.edges)
            retired.discard(event.node)
            return {event.node} | seen
        if isinstance(event, EdgeArrival):
            _require(event.u != event.v, f"self-loop on {event.u!r}")
            for node in (event.u, event.v):
                _require(self.graph_store.contains(node),
                         f"unknown node {node!r}")
            _require(event.weight > 0,
                     "edge weights must be positive, got "
                     f"{event.weight}")
            cap_u, adj_u = self._node(event.u)
            cap_v, adj_v = self._node(event.v)
            if event.v not in adj_u:
                self._num_edges += 1
            self._put_node(
                event.u, (cap_u, {**adj_u, event.v: event.weight})
            )
            self._put_node(
                event.v, (cap_v, {**adj_v, event.u: event.weight})
            )
            return {event.u, event.v}
        if isinstance(event, CapacityChange):
            _require(self.graph_store.contains(event.node),
                     f"capacity change for unknown node {event.node!r}")
            _require(event.capacity >= 0,
                     f"capacity must be >= 0, got {event.capacity}")
            _, adj = self._node(event.node)
            self._put_node(event.node, (event.capacity, adj))
            # Retuning b(v) can flip every incident edge's eligibility.
            return {event.node} | set(adj)
        if isinstance(event, Retirement):
            _require(self.graph_store.contains(event.node),
                     f"retirement of unknown node {event.node!r}")
            _, adj = self._node(event.node)
            for neighbor in adj:
                capacity, nbr_adj = self._node(neighbor)
                nbr_adj = dict(nbr_adj)
                nbr_adj.pop(event.node, None)
                self._put_node(neighbor, (capacity, nbr_adj))
            self._discard_node(event.node)
            self._num_edges -= len(adj)
            retired.add(event.node)
            return set(adj)
        raise EventError(f"unknown event type: {event!r}")

    def _affected(self, seeds: Set[str]) -> Set[str]:
        """Eligible components of the final graph containing a seed.

        Live-but-ineligible seeds (``b = 0`` or no eligible edge) are
        included as singletons: they cannot match, but their stale
        matched edges must be dropped.
        """
        live: Set[str] = set()
        frontier: List[str] = []
        for node in seeds:
            record = self._node(node)
            if record is None:
                continue  # retired later in the batch
            live.add(node)
            if record[0] > 0:
                frontier.append(node)
        visited: Set[str] = set(frontier)
        while frontier:
            node = frontier.pop()
            for neighbor in self._node(node)[1]:
                if neighbor in visited:
                    continue
                record = self._node(neighbor)
                if record is not None and record[0] > 0:
                    visited.add(neighbor)
                    frontier.append(neighbor)
        return live | visited

    # -- incremental re-convergence ----------------------------------------

    def _reconverge(
        self,
        affected: Set[str],
        retired: Optional[Set[str]] = None,
        inject_fault: bool = False,
    ) -> int:
        """Recompute the affected components; returns rounds run.

        ``inject_fault`` makes the re-convergence fail transiently
        after its first round's partner updates (or immediately when
        there is nothing to converge) — the worst spot for the flush
        transaction: stores and driver-side matching are maximally
        mid-update.
        """
        for node in retired or ():
            self.match_store.discard(canonical_bytes(node), node)
            self._drop_matches(node)
        deltas: List[Tuple[str, GreedyDeltaNode]] = []
        local_edges = 0
        for node in sorted(affected):
            self._drop_matches(node)
            key_bytes = canonical_bytes(node)
            b, full_adj = self._node(node)
            adj: Dict[str, float] = {}
            if b > 0:
                for neighbor, weight in full_adj.items():
                    if self._node(neighbor)[0] > 0:
                        adj[neighbor] = weight
            if adj:
                state = GreedyDeltaNode(b=b, adj=adj, inbox={})
                self.match_store.put(key_bytes, node, state)
                deltas.append((node, state))
                local_edges += len(adj)
            else:
                self.match_store.discard(key_bytes, node)
        # Every round with live eligible edges matches at least one, so
        # rounds are bounded by the affected edge count (cf.
        # ``default_max_rounds``); the +1 covers the seedless flush.
        max_rounds = local_edges // 2 + 1
        rounds = 0
        while deltas:
            if rounds >= max_rounds:
                raise RoundLimitExceeded("online-matching", max_rounds)
            output, deltas = self.runtime.run_stateful(
                self._job, self.match_store, deltas=deltas
            )
            rounds += 1
            for key, weight in output:
                if isinstance(key, tuple) and key[0] == "matched":
                    self._partners.setdefault(key[1], {})[key[2]] = weight
                    self._partners.setdefault(key[2], {})[key[1]] = weight
            if inject_fault:
                self._inject_reconverge_fault()
        if inject_fault:
            self._inject_reconverge_fault()
        return rounds

    def _inject_reconverge_fault(self) -> None:
        self._meter_fault("injected_flush")
        self._meter_fault("injected_total")
        raise InjectedFault("injected mid-reconvergence flush fault")

    def _drop_matches(self, node: str) -> None:
        """Forget every matched edge incident to ``node``."""
        for partner in self._partners.pop(node, {}):
            peers = self._partners.get(partner)
            if peers is not None:
                peers.pop(node, None)
                if not peers:
                    del self._partners[partner]

    def _meter(self, name: str, value: int = 1) -> None:
        self.runtime.counters.increment(
            SERVICE_COUNTER_GROUP, name, value
        )

    def _stage_gauge(self, stage: str):
        """Cumulative wall-clock gauge for one flush stage.

        Accumulates across *all* flushes on the runtime's registry, so
        ``repro serve --profile`` can report admit/re-converge seconds
        for the whole session, not just the last flush.
        """
        return self.runtime.metrics.gauge(
            SERVICE_COUNTER_GROUP, f"{stage}_seconds"
        )

    @property
    def flush_seconds(self) -> List[float]:
        """Wall-clock seconds of every flush, in order (the histogram's
        retained samples — kept for exact percentiles)."""
        return list(self._flush_hist.samples or ())

    # -- queries -----------------------------------------------------------

    def match_lookup(self, node: str) -> Dict[str, float]:
        """Current partners of ``node`` as ``{partner: weight}``."""
        return dict(self._partners.get(node, {}))

    def matching_edges(self) -> List[Tuple[str, str, float]]:
        """Every matched edge once, endpoints normalized, sorted."""
        return sorted(
            (u, v, weight)
            for u, peers in self._partners.items()
            for v, weight in peers.items()
            if u < v
        )

    @property
    def value(self) -> float:
        """Total weight of the current matching."""
        return sum(weight for _, _, weight in self.matching_edges())

    @property
    def num_nodes(self) -> int:
        """Live nodes (from the store's in-memory key index)."""
        return len(self.graph_store)

    @property
    def num_edges(self) -> int:
        """Live candidate edges (maintained incrementally)."""
        return self._num_edges

    def export_graph(self) -> Graph:
        """The full current graph as a driver-side :class:`Graph`.

        Diagnostic only (verification, CLI reports): it scans every
        record of the graph store, un-parking partitions — the one
        full-state read the service itself never needs.
        """
        graph = Graph()
        records = list(self.graph_store.records())
        for node, (capacity, _) in records:
            graph.add_node(node, capacity)
        for node, (_, adj) in records:
            for neighbor, weight in adj.items():
                if node < neighbor:
                    graph.add_edge(node, neighbor, weight)
        return graph

    def snapshot(self) -> Dict[str, object]:
        """A consistent view of the live state and service counters."""
        edges = self.matching_edges()
        return {
            "nodes": self.num_nodes,
            "candidate_edges": self.num_edges,
            "matched_edges": len(edges),
            "matching": edges,
            "value": sum(weight for _, _, weight in edges),
            "counters": self.runtime.counters.group(
                SERVICE_COUNTER_GROUP
            ),
        }

    def verify(self) -> Tuple[bool, float]:
        """Check the incremental matching against a cold batch.

        Runs sequential greedy (provably equal to GreedyMR) on the
        exported full graph and compares edge sets and weights; returns
        ``(identical, cold_value)``.  Diagnostic — the service never
        needs this for correctness, but the CLI and the serving
        benchmark assert it on every run.
        """
        from ..matching import greedy_b_matching

        cold = greedy_b_matching(self.export_graph())
        cold_edges = sorted(cold.matching.edges())
        return cold_edges == self.matching_edges(), cold.value

    def close(self) -> None:
        """Release both resident stores (parked datasets included)."""
        self.graph_store.close()
        self.match_store.close()

    def __enter__(self) -> "OnlineMatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise EventError(message)
