"""Online matching service: live events on the resident-state plane.

The batch pipeline answers "what should everyone see right now?" from
scratch; this package keeps the answer *warm*.  An
:class:`OnlineMatcher` holds the candidate graph and a resident
GreedyMR state store across jobs, admits live events — new items,
new consumers, capacity retunes, retirements — and re-converges only
the affected eligible components via frontier delta rounds.  The
result is provably bit-identical to a cold batch GreedyMR run on the
final graph (see :mod:`repro.service.matcher` for the component
argument).  :class:`MatchingService` adds the serving surface: asyncio
micro-batching with request coalescing, ``submit_event(s)`` /
``match_lookup`` / ``snapshot`` endpoints, and always-on counters.

Quickstart::

    import asyncio
    from repro.service import (
        Arrival, MatchingService, OnlineMatcher, synthetic_events,
    )

    async def demo(graph):
        service = MatchingService(OnlineMatcher(graph=graph))
        await service.submit_event(
            Arrival("new-photo", capacity=2, edges=(("alice", 0.9),))
        )
        feed = await service.match_lookup("alice")
        await service.close()
        return feed

CLI: ``repro serve`` drives a synthetic event stream against a
generated corpus and reports coalescing, latency percentiles, and the
cold-batch verification.
"""

from .events import (
    Arrival,
    CapacityChange,
    EdgeArrival,
    Event,
    EventError,
    Retirement,
    apply_event,
    plain_graph,
)
from .matcher import SERVICE_COUNTER_GROUP, FlushReport, OnlineMatcher
from .service import MatchingService, ServiceClosed
from .workload import synthetic_events

__all__ = [
    "Arrival",
    "CapacityChange",
    "EdgeArrival",
    "Event",
    "EventError",
    "FlushReport",
    "MatchingService",
    "OnlineMatcher",
    "Retirement",
    "SERVICE_COUNTER_GROUP",
    "ServiceClosed",
    "apply_event",
    "plain_graph",
    "synthetic_events",
]
