"""The live event vocabulary of the online matching service.

The paper frames content matching as a batch problem, but the serving
setting it motivates (SocialScope's content-site framing) is a stream:
photos are uploaded, users sign up, budgets are retuned, accounts are
deleted.  This module defines the four event types the service admits
and — crucially — a single driver-side interpretation of each
(:func:`apply_event`), shared by the matcher, the synthetic workload
generator, and the tests' cold-batch verification, so "the final graph
after these events" means exactly one thing everywhere.

Events are validated against the graph they apply to; an invalid event
raises :class:`EventError` and leaves the graph untouched, so a bad
event in a batch is rejectable without poisoning its neighbors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..graph import Graph

__all__ = [
    "Arrival",
    "CapacityChange",
    "EdgeArrival",
    "Event",
    "EventError",
    "Retirement",
    "apply_event",
    "plain_graph",
]


class EventError(ValueError):
    """An event is invalid against the current graph."""


@dataclass(frozen=True)
class Arrival:
    """A new node enters: a fresh item or consumer with its budget.

    ``edges`` are its initial candidate edges — ``(neighbor, weight)``
    pairs whose neighbors must already exist (a new photo arrives with
    its similarity-join scores against the live audience).
    """

    node: str
    capacity: int = 1
    edges: Tuple[Tuple[str, float], ...] = ()


@dataclass(frozen=True)
class EdgeArrival:
    """A new candidate edge between two live nodes (or a re-score:
    re-adding an existing edge overwrites its weight)."""

    u: str
    v: str
    weight: float


@dataclass(frozen=True)
class CapacityChange:
    """A live node's budget ``b(v)`` is retuned (``0`` benches it)."""

    node: str
    capacity: int


@dataclass(frozen=True)
class Retirement:
    """A live node leaves, taking every incident edge with it."""

    node: str


Event = Union[Arrival, EdgeArrival, CapacityChange, Retirement]


def apply_event(graph: Graph, event: Event) -> None:
    """Apply ``event`` to ``graph`` in place (validate-then-mutate).

    Raises :class:`EventError` without touching the graph when the
    event is invalid.  This is the one semantic authority for events:
    the matcher's authoritative graph, the workload generator's mirror,
    and the verification cold-batch all evolve through this function.
    """
    if isinstance(event, Arrival):
        _check(not graph.has_node(event.node),
               f"arrival of existing node {event.node!r}")
        _check(event.capacity >= 0,
               f"arrival capacity must be >= 0, got {event.capacity}")
        seen = set()
        for neighbor, weight in event.edges:
            _check(neighbor != event.node,
                   f"arrival {event.node!r} carries a self-loop")
            _check(neighbor not in seen,
                   f"arrival {event.node!r} repeats edge to "
                   f"{neighbor!r}")
            seen.add(neighbor)
            _check(graph.has_node(neighbor),
                   f"arrival {event.node!r} references unknown "
                   f"neighbor {neighbor!r}")
            _check(weight > 0,
                   f"edge weights must be positive, got {weight}")
        graph.add_node(event.node, event.capacity)
        for neighbor, weight in event.edges:
            graph.add_edge(event.node, neighbor, weight)
    elif isinstance(event, EdgeArrival):
        _check(event.u != event.v, f"self-loop on {event.u!r}")
        for node in (event.u, event.v):
            _check(graph.has_node(node), f"unknown node {node!r}")
        _check(event.weight > 0,
               f"edge weights must be positive, got {event.weight}")
        graph.add_edge(event.u, event.v, event.weight)
    elif isinstance(event, CapacityChange):
        _check(graph.has_node(event.node),
               f"capacity change for unknown node {event.node!r}")
        _check(event.capacity >= 0,
               f"capacity must be >= 0, got {event.capacity}")
        graph.add_node(event.node, event.capacity)
    elif isinstance(event, Retirement):
        _check(graph.has_node(event.node),
               f"retirement of unknown node {event.node!r}")
        graph.remove_node(event.node)
    else:
        raise EventError(f"unknown event type: {event!r}")


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise EventError(message)


def plain_graph(graph: Optional[Graph]) -> Graph:
    """A plain :class:`Graph` copy (drops bipartite side bookkeeping).

    The service is side-agnostic — arrivals need no item/consumer
    declaration — so it works on a general graph even when bootstrapped
    from a :class:`~repro.graph.BipartiteGraph`.
    """
    plain = Graph()
    if graph is None:
        return plain
    for node, capacity in graph.capacities().items():
        plain.add_node(node, capacity)
    for edge in graph.edges():
        plain.add_edge(edge.u, edge.v, edge.weight)
    return plain
