"""The asyncio facade: micro-batched admission over the online matcher.

:class:`MatchingService` turns the synchronous
:class:`~repro.service.matcher.OnlineMatcher` into a serving endpoint
with *request coalescing*: submitted events buffer in a pending
micro-batch that flushes when it reaches ``max_batch`` events or when
the oldest pending event has waited ``max_delay`` seconds — whichever
comes first.  A burst of K events therefore triggers far fewer than K
re-convergences (asserted via the service counters in
``tests/service/test_service.py``), which is the entire point: one
frontier re-convergence amortizes across every event in the batch.

Flushes run in a worker thread (``loop.run_in_executor``) so the event
loop stays responsive while the simulated cluster grinds, and are
serialized by an :class:`asyncio.Lock` — the matcher is single-writer
by design.  ``submit_event(s)`` resolves with the
:class:`~repro.service.matcher.FlushReport` of the flush that admitted
the caller's events; ``match_lookup``/``snapshot`` drain pending events
first, so reads observe every prior write (read-your-writes).

No third-party dependencies: plain ``asyncio`` from the standard
library, driven by ``asyncio.run`` in tests and the CLI.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Iterable, List, Optional, Set

from ..telemetry.metrics import latency_summary_ms
from .events import Event
from .matcher import SERVICE_COUNTER_GROUP, FlushReport, OnlineMatcher

__all__ = ["MatchingService", "ServiceClosed"]


class ServiceClosed(RuntimeError):
    """Submit after :meth:`MatchingService.close`."""


class MatchingService:
    """Micro-batching asyncio wrapper around an :class:`OnlineMatcher`.

    Parameters
    ----------
    matcher:
        The engine; the service takes ownership (``close`` closes it).
    max_batch:
        Flush as soon as this many events are pending.
    max_delay:
        Flush at latest this many seconds after the first pending
        event arrived (the latency bound of the coalescing trade).
    """

    def __init__(
        self,
        matcher: OnlineMatcher,
        max_batch: int = 16,
        max_delay: float = 0.05,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ValueError(
                f"max_delay must be >= 0, got {max_delay}"
            )
        self.matcher = matcher
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._pending: List[Event] = []
        self._waiters: List[asyncio.Future] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        self._lock = asyncio.Lock()
        self._inflight: Set[asyncio.Task] = set()
        self._closed = False

    # -- submission --------------------------------------------------------

    async def submit_event(self, event: Event) -> FlushReport:
        """Enqueue one event; resolves when its flush has converged."""
        return await self.submit_events([event])

    async def submit_events(
        self, events: Iterable[Event]
    ) -> FlushReport:
        """Enqueue events into the pending micro-batch.

        Resolves with the report of the flush that admitted them (an
        invalid event surfaces there as a rejection, not an
        exception — one bad event must not fail its batchmates).
        """
        if self._closed:
            raise ServiceClosed("service is closed")
        loop = asyncio.get_running_loop()
        waiter: asyncio.Future = loop.create_future()
        self._pending.extend(events)
        self._waiters.append(waiter)
        if len(self._pending) >= self.max_batch:
            self._start_flush()
        elif self._timer is None:
            self._timer = loop.call_later(
                self.max_delay, self._start_flush
            )
        return await waiter

    def _start_flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._waiters:
            return
        batch, waiters = self._pending, self._waiters
        self._pending, self._waiters = [], []
        task = asyncio.ensure_future(self._flush(batch, waiters))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _flush(
        self, batch: List[Event], waiters: List[asyncio.Future]
    ) -> None:
        loop = asyncio.get_running_loop()
        async with self._lock:
            try:
                report = await loop.run_in_executor(
                    None, self.matcher.flush, batch
                )
            except BaseException as exc:  # matcher bugs -> every waiter
                for waiter in waiters:
                    if not waiter.done():
                        waiter.set_exception(exc)
                return
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(report)

    async def drain(self) -> None:
        """Flush anything pending and wait for in-flight flushes."""
        self._start_flush()
        if self._inflight:
            await asyncio.gather(
                *list(self._inflight), return_exceptions=True
            )

    # -- reads (read-your-writes) ------------------------------------------

    async def match_lookup(
        self, node: str, fresh: bool = True
    ) -> Dict[str, float]:
        """Current partners of ``node``.

        ``fresh=True`` (default) drains pending events first, so the
        answer reflects every event submitted before the call;
        ``fresh=False`` reads the last converged matching immediately.
        """
        if fresh:
            await self.drain()
        return self.matcher.match_lookup(node)

    async def snapshot(self) -> Dict[str, object]:
        """Drain, then return the matcher's consistent snapshot."""
        await self.drain()
        return self.matcher.snapshot()

    def metrics(self) -> Dict[str, float]:
        """Always-on serving meters (see ``BENCH_serving.json``).

        Coalescing ratio is events admitted per flush; latency
        percentiles (p50/p95/p99 — the tail matters under skewed
        traffic) are over per-flush re-convergence wall-clock, computed
        by the shared nearest-rank helper
        (:func:`~repro.telemetry.metrics.percentile`).
        ``flushes_per_sec`` and ``throughput_events_per_s`` are rates
        over *busy* time (the sum of flush wall-clock), so they measure
        the engine, not the arrival gaps.
        """
        counters = self.matcher.runtime.counters.group(
            SERVICE_COUNTER_GROUP
        )
        faults = self.matcher.runtime.counters.group("faults")
        latencies = self.matcher.flush_seconds
        admitted = counters.get("events.admitted", 0)
        flushed = counters.get("batches.flushed", 0)
        busy = sum(latencies)
        report: Dict[str, float] = {
            "events_admitted": admitted,
            "events_rejected": counters.get("events.rejected", 0),
            "batches_flushed": flushed,
            "coalescing_ratio": admitted / flushed if flushed else 0.0,
            "reconverge_rounds": counters.get("reconverge.rounds", 0),
            "throughput_events_per_s": (
                admitted / busy if busy > 0 else 0.0
            ),
            "flushes_per_sec": flushed / busy if busy > 0 else 0.0,
            "dead_letter_events": len(self.matcher.dead_letters),
            "flush_retries": faults.get("flush.retries", 0),
        }
        report.update(latency_summary_ms(latencies))
        return report

    async def close(self) -> None:
        """Drain, reject further submissions, release the matcher."""
        await self.drain()
        self._closed = True
        if self._timer is not None:  # pragma: no cover - drained above
            self._timer.cancel()
            self._timer = None
        self.matcher.close()

    async def __aenter__(self) -> "MatchingService":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()
