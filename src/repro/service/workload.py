"""Deterministic synthetic event streams for the live demos and tests.

:func:`synthetic_events` generates a seeded stream of valid events
against an evolving graph: arrivals (with candidate edges to the live
population), re-scores, budget retunes, and retirements, in proportions
loosely matching a content site's churn.  Validity is maintained by
construction — every generated event is applied to a *mirror* graph via
:func:`~repro.service.events.apply_event`, the same semantic authority
the matcher uses, so the returned mirror is exactly "the final graph
after these events".  The CLI's ``repro serve``, the examples' live
modes, the serving benchmark, and the integration tests all share this
generator.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..graph import Graph
from .events import (
    Arrival,
    CapacityChange,
    EdgeArrival,
    Event,
    Retirement,
    apply_event,
    plain_graph,
)

__all__ = ["synthetic_events"]

#: Weight grid for generated edges — coarse enough to exercise the
#: total edge order's tie-breaking, like the test strategies do.
_WEIGHTS = (0.5, 1.0, 1.5, 2.0, 3.0, 4.5, 7.0, 10.0)


def synthetic_events(
    graph: Graph,
    count: int,
    seed: int = 0,
    node_prefix: str = "live",
    max_edges_per_arrival: int = 3,
) -> Tuple[List[Event], Graph]:
    """Generate ``count`` valid events against (a copy of) ``graph``.

    Returns ``(events, final_graph)`` where ``final_graph`` is the
    mirror after every event applied — the cold-batch reference for the
    service's bit-identical re-convergence contract.  The input graph
    is not mutated.  Same ``(graph, count, seed)`` always yields the
    same stream.
    """
    rng = random.Random(seed)
    mirror = plain_graph(graph)
    events: List[Event] = []
    arrivals = 0
    for _ in range(count):
        nodes = sorted(mirror.nodes())
        roll = rng.random()
        event: Event
        if roll < 0.45 or len(nodes) < 2:
            name = f"{node_prefix}-{arrivals}"
            arrivals += 1
            targets = rng.sample(
                nodes, min(len(nodes), rng.randint(0, max_edges_per_arrival))
            )
            event = Arrival(
                node=name,
                capacity=rng.randint(1, 3),
                edges=tuple(
                    (target, rng.choice(_WEIGHTS)) for target in targets
                ),
            )
        elif roll < 0.65:
            u, v = rng.sample(nodes, 2)
            event = EdgeArrival(u=u, v=v, weight=rng.choice(_WEIGHTS))
        elif roll < 0.85:
            event = CapacityChange(
                node=rng.choice(nodes), capacity=rng.randint(0, 3)
            )
        else:
            event = Retirement(node=rng.choice(nodes))
        apply_event(mirror, event)
        events.append(event)
    return events, mirror
