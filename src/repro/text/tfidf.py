"""tf·idf weighting over a corpus of sparse term-frequency vectors.

Used for the Yahoo! Answers dataset: questions and user answer-profiles
are term-frequency vectors re-weighted by inverse document frequency so
that discriminative words dominate the similarity (§6 of the paper).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping

from .vectors import TermVector

__all__ = ["document_frequencies", "idf_weights", "TfIdfModel"]


def document_frequencies(
    documents: Iterable[Mapping[str, float]],
) -> Dict[str, int]:
    """Count, for every term, the number of documents containing it."""
    df: Dict[str, int] = {}
    for document in documents:
        for term in document:
            df[term] = df.get(term, 0) + 1
    return df


def idf_weights(df: Mapping[str, int], num_documents: int) -> Dict[str, float]:
    """Smoothed inverse document frequency: ``ln((1+N)/(1+df)) + 1``.

    The ``+1`` terms keep idf positive and defined for unseen terms,
    which matters because consumer profiles are scored against item
    vocabulary built from a different collection.
    """
    if num_documents < 0:
        raise ValueError("num_documents must be non-negative")
    return {
        term: math.log((1 + num_documents) / (1 + count)) + 1.0
        for term, count in df.items()
    }


class TfIdfModel:
    """A fitted tf·idf re-weighter.

    Fit on one corpus (typically items and consumers pooled, so both
    sides share the same idf scale), then transform any raw tf vector.

    >>> model = TfIdfModel.fit([{"a": 1.0}, {"a": 1.0, "b": 2.0}])
    >>> transformed = model.transform({"a": 1.0, "b": 1.0})
    >>> transformed["b"] > transformed["a"]  # rarer term weighs more
    True
    """

    def __init__(self, idf: Dict[str, float], default_idf: float) -> None:
        self.idf = idf
        self.default_idf = default_idf

    @classmethod
    def fit(cls, documents: Iterable[Mapping[str, float]]) -> "TfIdfModel":
        """Estimate idf weights from a corpus of tf vectors."""
        documents = list(documents)
        df = document_frequencies(documents)
        idf = idf_weights(df, len(documents))
        default = math.log(1 + len(documents)) + 1.0  # df = 0 smoothing
        return cls(idf, default)

    def transform(self, tf_vector: Mapping[str, float]) -> TermVector:
        """Re-weight a tf vector: ``w(term) = tf · idf(term)``.

        Sub-linear tf damping (``1 + ln(tf)``) is applied to raw counts
        greater than 1, the standard choice for verbose documents.
        """
        weighted: TermVector = {}
        for term, tf in tf_vector.items():
            if tf <= 0:
                continue
            damped = 1.0 + math.log(tf) if tf > 1.0 else tf
            weighted[term] = damped * self.idf.get(term, self.default_idf)
        return weighted
