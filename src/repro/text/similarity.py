"""Similarity functions between term vectors.

The paper uses the raw dot product of tag vectors for the flickr
datasets and dot products of tf·idf vectors for yahoo-answers.  Cosine
is provided as the normalized alternative mentioned in §4 ("more complex
similarity functions can be used, too").
"""

from __future__ import annotations

from typing import Mapping

from .vectors import dot, norm

__all__ = ["dot_similarity", "cosine_similarity"]


def dot_similarity(
    a: Mapping[str, float], b: Mapping[str, float]
) -> float:
    """The paper's default edge weight: the sparse dot product."""
    return dot(a, b)


def cosine_similarity(
    a: Mapping[str, float], b: Mapping[str, float]
) -> float:
    """Dot product normalized by vector lengths; 0 for zero vectors."""
    denominator = norm(a) * norm(b)
    if denominator == 0.0:
        return 0.0
    return dot(a, b) / denominator
