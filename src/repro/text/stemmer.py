"""A Porter-style suffix-stripping stemmer.

Implements the high-impact subset of Porter's algorithm (steps 1a, 1b,
1c and the most common step-2/3/4 suffix mappings).  It conflates the
inflectional variants that matter for tf·idf similarity (plurals,
-ing/-ed forms, -ation/-ize derivations) while staying small and fully
deterministic.  The goal is the paper's "stem words" preprocessing step,
not linguistic perfection.
"""

from __future__ import annotations

__all__ = ["stem"]

_VOWELS = set("aeiou")


def _is_consonant(word: str, index: int) -> bool:
    ch = word[index]
    if ch in _VOWELS:
        return False
    if ch == "y":
        return index == 0 or not _is_consonant(word, index - 1)
    return True


def _measure(stem_part: str) -> int:
    """Porter's *m*: the number of vowel-consonant sequences."""
    m = 0
    previous_was_vowel = False
    for index in range(len(stem_part)):
        consonant = _is_consonant(stem_part, index)
        if consonant and previous_was_vowel:
            m += 1
        previous_was_vowel = not consonant
    return m


def _contains_vowel(stem_part: str) -> bool:
    return any(
        not _is_consonant(stem_part, index)
        for index in range(len(stem_part))
    )


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    if len(word) < 3:
        return False
    if not (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
    ):
        return False
    return word[-1] not in "wxy"


# Step 2/3 mappings (applied first): (suffix, replacement, min measure).
_STEP23_RULES = (
    ("ational", "ate", 0),
    ("ization", "ize", 0),
    ("iveness", "ive", 0),
    ("fulness", "ful", 0),
    ("ousness", "ous", 0),
    ("tional", "tion", 0),
    ("biliti", "ble", 0),
    ("entli", "ent", 0),
    ("ousli", "ous", 0),
    ("ation", "ate", 0),
    ("alism", "al", 0),
    ("aliti", "al", 0),
    ("iviti", "ive", 0),
    ("alli", "al", 0),
    ("ical", "ic", 0),
    ("ness", "", 0),
    ("izer", "ize", 0),
    ("ator", "ate", 0),
    ("ful", "", 0),
)

# Step 4 strips (applied second, on the step-2/3 output): longer stems
# only (min measure 1, i.e. Porter's m > 1 counted on the remainder).
_STEP4_RULES = (
    ("ement", "", 1),
    ("ment", "", 1),
    ("able", "", 1),
    ("ible", "", 1),
    ("ance", "", 1),
    ("ence", "", 1),
    ("ous", "", 1),
    ("ive", "", 1),
    ("ize", "", 1),
    ("ion", "", 1),
    ("ate", "", 1),
    ("iti", "", 1),
    ("al", "", 1),
    ("er", "", 1),
    ("ic", "", 1),
)


def stem(word: str) -> str:
    """Return the stem of ``word`` (assumed lowercase alphanumeric)."""
    if len(word) <= 2:
        return word
    word = _step_1a(word)
    word = _step_1b(word)
    word = _step_1c(word)
    word = _apply_rules(word, _STEP23_RULES)
    word = _apply_rules(word, _STEP4_RULES)
    return word


def _step_1a(word: str) -> str:
    if word.endswith("sses"):
        return word[:-2]
    if word.endswith("ies"):
        return word[:-2]
    if word.endswith("ss"):
        return word
    if word.endswith("s") and len(word) > 3:
        return word[:-1]
    return word


def _step_1b(word: str) -> str:
    if word.endswith("eed"):
        if _measure(word[:-3]) > 0:
            return word[:-1]
        return word
    stripped = None
    if word.endswith("ed") and _contains_vowel(word[:-2]):
        stripped = word[:-2]
    elif word.endswith("ing") and _contains_vowel(word[:-3]):
        stripped = word[:-3]
    if stripped is None:
        return word
    if stripped.endswith(("at", "bl", "iz")):
        return stripped + "e"
    if _ends_double_consonant(stripped) and not stripped.endswith(
        ("l", "s", "z")
    ):
        return stripped[:-1]
    if _measure(stripped) == 1 and _ends_cvc(stripped):
        return stripped + "e"
    return stripped


def _step_1c(word: str) -> str:
    if word.endswith("y") and _contains_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


def _apply_rules(word: str, rules) -> str:
    """Apply the first matching suffix rule of one step (or none)."""
    for suffix, replacement, min_measure in rules:
        if word.endswith(suffix):
            stem_part = word[: -len(suffix)]
            if _measure(stem_part) > min_measure:
                return stem_part + replacement
            return word
    return word
