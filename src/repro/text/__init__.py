"""Text and vector-space substrate (edge-weight machinery of §4).

Public surface::

    from repro.text import tokenize, remove_stop_words, stem
    from repro.text import TfIdfModel, dot, cosine_similarity
"""

from .similarity import cosine_similarity, dot_similarity
from .stemmer import stem
from .tfidf import TfIdfModel, document_frequencies, idf_weights
from .tokenize import STOP_WORDS, remove_stop_words, tokenize
from .vectors import (
    TermVector,
    add,
    dot,
    from_counts,
    norm,
    normalize,
    scale,
    top_terms,
)

__all__ = [
    "STOP_WORDS",
    "TermVector",
    "TfIdfModel",
    "add",
    "cosine_similarity",
    "document_frequencies",
    "dot",
    "dot_similarity",
    "from_counts",
    "idf_weights",
    "norm",
    "normalize",
    "remove_stop_words",
    "scale",
    "stem",
    "tokenize",
    "top_terms",
]
