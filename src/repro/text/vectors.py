"""Sparse term vectors and their algebra.

Items and consumers are represented in a vector space (§4 of the paper):
photos by their tags, users by the tags they used, questions/answerers by
tf·idf-weighted words.  A vector is a plain ``dict`` from term to weight —
trivially serializable through the MapReduce shuffle.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, Mapping

__all__ = [
    "TermVector",
    "from_counts",
    "dot",
    "norm",
    "normalize",
    "add",
    "scale",
    "top_terms",
]

#: A sparse term vector: term -> non-negative weight.
TermVector = Dict[str, float]


def from_counts(terms: Iterable[str]) -> TermVector:
    """Build a raw term-frequency vector from a token stream."""
    return {term: float(count) for term, count in Counter(terms).items()}


def dot(a: Mapping[str, float], b: Mapping[str, float]) -> float:
    """Dot product of two sparse vectors.

    This is the paper's edge-weight function for the flickr datasets:
    ``w(t_i, c_j) = v(t_i) · v(c_j)``.
    """
    if len(a) > len(b):
        a, b = b, a
    return sum(weight * b[term] for term, weight in a.items() if term in b)


def norm(vector: Mapping[str, float]) -> float:
    """Euclidean norm of a sparse vector."""
    return math.sqrt(sum(weight * weight for weight in vector.values()))


def normalize(vector: Mapping[str, float]) -> TermVector:
    """Scale a vector to unit Euclidean norm (zero vectors stay zero)."""
    length = norm(vector)
    if length == 0.0:
        return dict(vector)
    return {term: weight / length for term, weight in vector.items()}


def add(a: Mapping[str, float], b: Mapping[str, float]) -> TermVector:
    """Component-wise sum of two sparse vectors."""
    result: TermVector = dict(a)
    for term, weight in b.items():
        result[term] = result.get(term, 0.0) + weight
    return result


def scale(vector: Mapping[str, float], factor: float) -> TermVector:
    """Multiply every component by ``factor``."""
    return {term: weight * factor for term, weight in vector.items()}


def top_terms(vector: Mapping[str, float], k: int) -> TermVector:
    """Keep only the ``k`` heaviest terms (ties broken by term)."""
    if k >= len(vector):
        return dict(vector)
    heaviest = sorted(
        vector.items(), key=lambda item: (-item[1], item[0])
    )[:k]
    return dict(heaviest)
