"""Tokenization and stop-word removal for the Yahoo! Answers pipeline.

Section 6 of the paper: "We preprocess the answers to remove punctuation
and stop-words, stem words, and apply tf·idf weighting."  This module
implements the first two steps; stemming lives in
:mod:`repro.text.stemmer` and weighting in :mod:`repro.text.tfidf`.
"""

from __future__ import annotations

import re
from typing import FrozenSet, Iterable, List

__all__ = ["STOP_WORDS", "tokenize", "remove_stop_words"]

# A compact English stop-word list (the top function words); enough to
# reproduce the preprocessing effect without shipping a lexicon.
STOP_WORDS: FrozenSet[str] = frozenset(
    """
    a about above after again against all am an and any are as at be
    because been before being below between both but by cannot could did
    do does doing down during each few for from further had has have
    having he her here hers herself him himself his how i if in into is
    it its itself just me more most my myself no nor not now of off on
    once only or other our ours ourselves out over own same she should
    so some such than that the their theirs them themselves then there
    these they this those through to too under until up very was we were
    what when where which while who whom why will with you your yours
    yourself yourselves
    """.split()
)

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> List[str]:
    """Lowercase ``text`` and split it into alphanumeric tokens.

    Punctuation is discarded (it separates tokens), matching the paper's
    "remove punctuation" step.
    """
    return _TOKEN_PATTERN.findall(text.lower())


def remove_stop_words(
    tokens: Iterable[str], stop_words: FrozenSet[str] = STOP_WORDS
) -> List[str]:
    """Drop stop-words (and single characters) from a token stream."""
    return [
        token
        for token in tokens
        if len(token) > 1 and token not in stop_words
    ]
