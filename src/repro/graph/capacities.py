"""Capacity (budget) assignment rules from Section 4 of the paper.

The paper derives capacities from application signals:

* consumers: ``b(u) = α · n(u)`` where ``n(u)`` proxies login activity
  (photos posted on flickr, answers given on Yahoo! Answers) and ``α``
  scales the overall system activity;
* the total consumer bandwidth ``B = Σ_c b(c)`` upper-bounds the number of
  delivered items, so item budgets are carved out of ``B``:

  - without quality assessment: ``b(t) = max{1, B/|T|}`` (uniform; used
    for yahoo-answers questions),
  - with quality scores ``q(t)`` (Σ q = 1): ``b(t) = max{1, q(t)·B}``
    (used for flickr with favorites as the quality proxy).

Capacities are integers (``b : V → N``); fractional formulas are rounded
half-up, with a floor of 1 so that every node can participate.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping

__all__ = [
    "round_capacity",
    "activity_capacities",
    "uniform_item_capacities",
    "quality_item_capacities",
    "total_bandwidth",
]


def round_capacity(value: float) -> int:
    """Round a fractional budget to an integer capacity, at least 1.

    Uses round-half-up (not banker's rounding) so capacity sequences are
    monotone in the underlying score.
    """
    return max(1, int(math.floor(value + 0.5)))


def activity_capacities(
    activity: Mapping[str, float], alpha: float
) -> Dict[str, int]:
    """Consumer capacities ``b(u) = α·n(u)`` (rounded, at least 1).

    ``activity`` maps consumer id to the activity proxy ``n(u)``; ``alpha``
    is the paper's activity multiplier (higher α simulates higher system
    activity).
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    return {
        node: round_capacity(alpha * n) for node, n in activity.items()
    }


def total_bandwidth(consumer_capacities: Mapping[str, int]) -> int:
    """The total distribution bandwidth ``B = Σ_c b(c)``."""
    return int(sum(consumer_capacities.values()))


def uniform_item_capacities(
    items: Iterable[str], bandwidth: int
) -> Dict[str, int]:
    """Item capacities without quality assessment: ``b(t) = max{1, B/|T|}``.

    Used for the yahoo-answers dataset, where every question gets the same
    budget ``b(q) = Σ_u α n(u) / |Q|``.
    """
    items = list(items)
    if not items:
        return {}
    share = bandwidth / len(items)
    return {item: round_capacity(share) for item in items}


def quality_item_capacities(
    quality: Mapping[str, float], bandwidth: int
) -> Dict[str, int]:
    """Item capacities proportional to quality: ``b(t) = max{1, q(t)·B}``.

    ``quality`` holds *unnormalized* non-negative scores (e.g. flickr
    favorite counts ``f(p)``); they are normalized internally so that
    ``Σ_t q(t) = 1`` as the paper assumes.  Zero-quality items still get
    the floor capacity of 1.
    """
    total = float(sum(quality.values()))
    if total < 0 or any(q < 0 for q in quality.values()):
        raise ValueError("quality scores must be non-negative")
    if total == 0:
        return {item: 1 for item in quality}
    return {
        item: round_capacity(q / total * bandwidth)
        for item, q in quality.items()
    }
