"""Random and adversarial graph generators for tests and ablations.

Includes the two adversarial instances discussed in the paper:

* :func:`ascending_path` — the worst case for GreedyMR (a path with
  non-decreasing weights causes a linear chain of cascading updates, §5.4);
* :func:`greedy_tightness_triangle` — the Appendix-A instance proving the
  ½-approximation of greedy is tight.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from .bipartite import BipartiteGraph, Graph

__all__ = [
    "random_bipartite",
    "random_graph",
    "ascending_path",
    "greedy_tightness_triangle",
    "star_graph",
]

WeightSampler = Callable[[random.Random], float]


def _uniform_weights(rng: random.Random) -> float:
    return rng.uniform(0.1, 10.0)


def random_bipartite(
    num_items: int,
    num_consumers: int,
    edge_probability: float,
    rng: Optional[random.Random] = None,
    weight_sampler: WeightSampler = _uniform_weights,
    max_capacity: int = 3,
) -> BipartiteGraph:
    """A G(n, m, p)-style random bipartite instance with random capacities.

    Every item-consumer pair becomes an edge independently with
    ``edge_probability``; weights come from ``weight_sampler`` and
    capacities are uniform integers in ``[1, max_capacity]``.
    """
    rng = rng or random.Random(0)
    graph = BipartiteGraph()
    items = [f"t{i}" for i in range(num_items)]
    consumers = [f"c{j}" for j in range(num_consumers)]
    for node in items:
        graph.add_item(node, rng.randint(1, max_capacity))
    for node in consumers:
        graph.add_consumer(node, rng.randint(1, max_capacity))
    for item in items:
        for consumer in consumers:
            if rng.random() < edge_probability:
                graph.add_edge(item, consumer, weight_sampler(rng))
    return graph


def random_graph(
    num_nodes: int,
    edge_probability: float,
    rng: Optional[random.Random] = None,
    weight_sampler: WeightSampler = _uniform_weights,
    max_capacity: int = 3,
) -> Graph:
    """A general (non-bipartite) random instance for the b-matching core.

    The paper notes all algorithms work on arbitrary undirected graphs;
    this generator exercises that path (e.g. maximal b-matching tests).
    """
    rng = rng or random.Random(0)
    graph = Graph()
    nodes = [f"v{i}" for i in range(num_nodes)]
    for node in nodes:
        graph.add_node(node, rng.randint(1, max_capacity))
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            if rng.random() < edge_probability:
                graph.add_edge(nodes[i], nodes[j], weight_sampler(rng))
    return graph


def ascending_path(num_nodes: int, base: float = 1.0) -> Graph:
    """The GreedyMR worst case: a path with non-decreasing edge weights.

    ``w(u_i, u_{i+1}) <= w(u_{i+1}, u_{i+2})`` forces GreedyMR through a
    linear chain of cascading updates — Θ(n) MapReduce rounds (§5.4).
    All capacities are 1.
    """
    if num_nodes < 2:
        raise ValueError("a path needs at least 2 nodes")
    graph = Graph()
    for i in range(num_nodes):
        graph.add_node(f"u{i:06d}", 1)
    for i in range(num_nodes - 1):
        graph.add_edge(f"u{i:06d}", f"u{i + 1:06d}", base + i)
    return graph


def greedy_tightness_triangle(epsilon: float = 0.1) -> Graph:
    """Appendix A's tight instance for the greedy ½-approximation.

    A triangle ``u, v, z`` with ``b(u)=b(z)=1, b(v)=2`` and weights
    ``w(uv)=w(vz)=1, w(zu)=1+ε``: greedy picks only the ``(1+ε)`` edge
    while the optimum takes both unit edges (value 2).
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    graph = Graph()
    graph.add_node("u", 1)
    graph.add_node("v", 2)
    graph.add_node("z", 1)
    graph.add_edge("u", "v", 1.0)
    graph.add_edge("v", "z", 1.0)
    graph.add_edge("z", "u", 1.0 + epsilon)
    return graph


def star_graph(
    num_leaves: int, center_capacity: int, weight_step: float = 1.0
) -> Graph:
    """A star with distinct leaf weights; optimum keeps the heaviest leaves.

    Handy for unit tests: the maximum-weight b-matching is exactly the
    ``center_capacity`` heaviest spokes.
    """
    graph = Graph()
    graph.add_node("center", center_capacity)
    for i in range(num_leaves):
        leaf = f"leaf{i:04d}"
        graph.add_node(leaf, 1)
        graph.add_edge("center", leaf, (i + 1) * weight_step)
    return graph
