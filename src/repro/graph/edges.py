"""Edge primitives shared by every graph algorithm in the package.

Edges are undirected; an edge between ``u`` and ``v`` is identified by the
*normalized* pair ``edge_key(u, v)`` (lexicographically smaller endpoint
first), so the two directed views of an edge always agree on identity.

A strict total order over edges — weight descending, then key ascending —
is defined by :func:`edge_sort_key`.  The greedy algorithms depend on this
order being *total* (no ties) for determinism and termination, so all
tie-breaking happens on the normalized key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["Edge", "EdgeKey", "edge_key", "edge_sort_key", "other_endpoint"]

#: Normalized identity of an undirected edge.
EdgeKey = Tuple[str, str]


def edge_key(u: str, v: str) -> EdgeKey:
    """Return the normalized ``(min, max)`` identity of edge ``{u, v}``."""
    if u == v:
        raise ValueError(f"self-loops are not allowed: {u!r}")
    return (u, v) if u < v else (v, u)


def other_endpoint(key: EdgeKey, node: str) -> str:
    """Given an edge key and one endpoint, return the other endpoint."""
    u, v = key
    if node == u:
        return v
    if node == v:
        return u
    raise ValueError(f"{node!r} is not an endpoint of {key!r}")


@dataclass(frozen=True)
class Edge:
    """An undirected weighted edge.

    ``u`` and ``v`` are stored normalized (``u < v``); construct through
    :meth:`make` to guarantee normalization.
    """

    u: str
    v: str
    weight: float

    @staticmethod
    def make(u: str, v: str, weight: float) -> "Edge":
        """Create an edge with normalized endpoint order."""
        a, b = edge_key(u, v)
        return Edge(a, b, weight)

    @property
    def key(self) -> EdgeKey:
        """The normalized identity of this edge."""
        return (self.u, self.v)

    def endpoints(self) -> Tuple[str, str]:
        """Both endpoints, in normalized order."""
        return (self.u, self.v)


def edge_sort_key(key: EdgeKey, weight: float) -> Tuple[float, EdgeKey]:
    """Sort key implementing the strict total order on edges.

    Sorting a list of ``edge_sort_key`` values ascending yields edges by
    *decreasing* weight, ties broken by ascending edge key.  Used by the
    sequential greedy and by GreedyMR's per-node proposal lists, which
    must agree on a single global order for the parallel algorithm to
    simulate the sequential one.
    """
    return (-weight, key)
