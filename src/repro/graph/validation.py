"""Feasibility checking and violation metrics for b-matchings.

The paper's Figure 4 reports the *average capacity violation*

    ε' = (1/|V|) Σ_v max{|M(v)| − b(v), 0} / b(v)

for StackMR, which is allowed to exceed capacities by a ``(1+ε)`` factor.
This module computes that statistic, plus strict feasibility checks used
as test invariants for every other algorithm.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple

from .edges import EdgeKey

__all__ = [
    "matching_degrees",
    "matching_weight",
    "ViolationReport",
    "check_matching",
]


def matching_degrees(edges: Iterable[EdgeKey]) -> Dict[str, int]:
    """Count ``|M(v)|``, the matched degree of every node in ``edges``."""
    degrees: Dict[str, int] = defaultdict(int)
    for u, v in edges:
        degrees[u] += 1
        degrees[v] += 1
    return dict(degrees)


def matching_weight(weights: Mapping[EdgeKey, float]) -> float:
    """Total weight of a matching given as an edge->weight mapping."""
    return float(sum(weights.values()))


@dataclass
class ViolationReport:
    """Capacity-violation statistics of a (possibly infeasible) matching.

    Attributes
    ----------
    feasible:
        ``True`` iff no node exceeds its capacity.
    average_violation:
        The paper's ε′ statistic (averaged over **all** nodes of the
        graph, including nodes with no violation, exactly as in §6).
    max_violation_ratio:
        ``max_v max{|M(v)|−b(v),0}/b(v)`` — worst single-node overflow.
    violated_nodes:
        Map from node to its overflow ``|M(v)| − b(v) > 0``.
    num_nodes:
        Number of nodes the average was taken over.
    """

    feasible: bool
    average_violation: float
    max_violation_ratio: float
    violated_nodes: Dict[str, int] = field(default_factory=dict)
    num_nodes: int = 0


def check_matching(
    capacities: Mapping[str, int],
    matched_edges: Iterable[EdgeKey],
    duplicate_check: bool = True,
) -> ViolationReport:
    """Validate a matching against node capacities.

    Parameters
    ----------
    capacities:
        The capacity function ``b`` over **all** graph nodes (the ε′
        average is taken over this full node set).
    matched_edges:
        The matching as an iterable of normalized edge keys.
    duplicate_check:
        When ``True`` (default), raise ``ValueError`` if the same edge
        appears twice — a matching is a *set* of edges.
    """
    edges = list(matched_edges)
    if duplicate_check and len(set(edges)) != len(edges):
        raise ValueError("matching contains duplicate edges")
    for u, v in edges:
        if u not in capacities or v not in capacities:
            raise ValueError(
                f"matched edge ({u!r}, {v!r}) has an endpoint with no "
                "declared capacity"
            )
    degrees = matching_degrees(edges)
    violated: Dict[str, int] = {}
    violation_sum = 0.0
    max_ratio = 0.0
    for node, b in capacities.items():
        matched = degrees.get(node, 0)
        overflow = max(matched - b, 0)
        if overflow > 0:
            if b <= 0:
                raise ValueError(
                    f"node {node!r} has capacity {b} but matched degree "
                    f"{matched}"
                )
            violated[node] = overflow
            ratio = overflow / b
            violation_sum += ratio
            max_ratio = max(max_ratio, ratio)
    num_nodes = len(capacities)
    average = violation_sum / num_nodes if num_nodes else 0.0
    return ViolationReport(
        feasible=not violated,
        average_violation=average,
        max_violation_ratio=max_ratio,
        violated_nodes=violated,
        num_nodes=num_nodes,
    )
