"""Plain-text serialization of graphs, edges, and capacities.

The on-disk formats are deliberately simple (TSV), matching what one
would feed a real Hadoop job:

* edge files: ``item <TAB> consumer <TAB> weight`` per line;
* capacity files: ``node <TAB> capacity`` per line.

All readers are streaming and validate as they parse.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Iterator, Tuple

from .bipartite import BipartiteGraph

__all__ = [
    "write_edges",
    "read_edges",
    "write_capacities",
    "read_capacities",
    "write_bipartite_graph",
    "read_bipartite_graph",
]

EdgeRow = Tuple[str, str, float]


def write_edges(path: str, edges: Iterable[EdgeRow]) -> int:
    """Write ``(u, v, weight)`` rows as TSV; returns the row count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for u, v, weight in edges:
            handle.write(f"{u}\t{v}\t{weight!r}\n")
            count += 1
    return count


def read_edges(path: str) -> Iterator[EdgeRow]:
    """Stream ``(u, v, weight)`` rows from a TSV edge file."""
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise ValueError(
                    f"{path}:{line_number}: expected 3 tab-separated "
                    f"fields, got {len(parts)}"
                )
            yield parts[0], parts[1], float(parts[2])


def write_capacities(path: str, capacities: Dict[str, int]) -> int:
    """Write ``node -> capacity`` as TSV (sorted); returns the row count."""
    with open(path, "w", encoding="utf-8") as handle:
        for node in sorted(capacities):
            handle.write(f"{node}\t{capacities[node]}\n")
    return len(capacities)


def read_capacities(path: str) -> Dict[str, int]:
    """Read a ``node -> capacity`` TSV file."""
    capacities: Dict[str, int] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 2:
                raise ValueError(
                    f"{path}:{line_number}: expected 2 tab-separated "
                    f"fields, got {len(parts)}"
                )
            capacities[parts[0]] = int(parts[1])
    return capacities


def write_bipartite_graph(directory: str, graph: BipartiteGraph) -> None:
    """Persist a bipartite instance as three TSV files in ``directory``.

    Files written: ``edges.tsv``, ``item_capacities.tsv``,
    ``consumer_capacities.tsv``.
    """
    os.makedirs(directory, exist_ok=True)
    items = set(graph.items())
    rows = []
    for edge in graph.edges():
        if edge.u in items:
            rows.append((edge.u, edge.v, edge.weight))
        else:
            rows.append((edge.v, edge.u, edge.weight))
    write_edges(os.path.join(directory, "edges.tsv"), rows)
    capacities = graph.capacities()
    write_capacities(
        os.path.join(directory, "item_capacities.tsv"),
        {node: capacities[node] for node in graph.items()},
    )
    write_capacities(
        os.path.join(directory, "consumer_capacities.tsv"),
        {node: capacities[node] for node in graph.consumers()},
    )


def read_bipartite_graph(directory: str) -> BipartiteGraph:
    """Load a bipartite instance written by :func:`write_bipartite_graph`."""
    item_caps = read_capacities(
        os.path.join(directory, "item_capacities.tsv")
    )
    consumer_caps = read_capacities(
        os.path.join(directory, "consumer_capacities.tsv")
    )
    edges = read_edges(os.path.join(directory, "edges.tsv"))
    return BipartiteGraph.from_edges(edges, item_caps, consumer_caps)
