"""Graph substrate: weighted capacitated graphs for b-matching.

Public surface::

    from repro.graph import BipartiteGraph, Graph, Edge, edge_key
    from repro.graph import activity_capacities, check_matching

See :mod:`repro.graph.capacities` for the paper's budget formulas and
:mod:`repro.graph.validation` for the ε′ violation statistic of Figure 4.
"""

from .bipartite import CONSUMER_SIDE, ITEM_SIDE, BipartiteGraph, Graph
from .capacities import (
    activity_capacities,
    quality_item_capacities,
    round_capacity,
    total_bandwidth,
    uniform_item_capacities,
)
from .edges import Edge, EdgeKey, edge_key, edge_sort_key, other_endpoint
from .generators import (
    ascending_path,
    greedy_tightness_triangle,
    random_bipartite,
    random_graph,
    star_graph,
)
from .io import (
    read_bipartite_graph,
    read_capacities,
    read_edges,
    write_bipartite_graph,
    write_capacities,
    write_edges,
)
from .validation import (
    ViolationReport,
    check_matching,
    matching_degrees,
    matching_weight,
)

__all__ = [
    "BipartiteGraph",
    "CONSUMER_SIDE",
    "Edge",
    "EdgeKey",
    "Graph",
    "ITEM_SIDE",
    "ViolationReport",
    "activity_capacities",
    "ascending_path",
    "check_matching",
    "edge_key",
    "edge_sort_key",
    "greedy_tightness_triangle",
    "matching_degrees",
    "matching_weight",
    "other_endpoint",
    "quality_item_capacities",
    "random_bipartite",
    "random_graph",
    "read_bipartite_graph",
    "read_capacities",
    "read_edges",
    "round_capacity",
    "star_graph",
    "total_bandwidth",
    "uniform_item_capacities",
    "write_bipartite_graph",
    "write_capacities",
    "write_edges",
]
