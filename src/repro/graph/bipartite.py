"""Weighted graphs with node capacities — the input of b-matching.

:class:`Graph` is a general undirected weighted graph with per-node
integer capacities ``b(v)`` (the paper's budgets).  All matching
algorithms accept a plain :class:`Graph`; :class:`BipartiteGraph` adds
the item/consumer side bookkeeping of Problem 1 and validates that every
edge crosses sides.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .edges import Edge, EdgeKey, edge_key

__all__ = ["Graph", "BipartiteGraph", "ITEM_SIDE", "CONSUMER_SIDE"]

ITEM_SIDE = "item"
CONSUMER_SIDE = "consumer"


class Graph:
    """An undirected weighted graph with integer node capacities.

    Nodes are strings.  Edges carry positive weights.  Capacities default
    to 1 (ordinary matching) and can be set per node.  The structure is
    mutable; algorithms that consume the graph operate on a copy.
    """

    def __init__(self) -> None:
        self._adj: Dict[str, Dict[str, float]] = {}
        self._capacity: Dict[str, int] = {}
        self._num_edges = 0

    # -- construction ------------------------------------------------------

    def add_node(self, node: str, capacity: int = 1) -> None:
        """Add ``node`` (idempotent) and set its capacity."""
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if node not in self._adj:
            self._adj[node] = {}
        self._capacity[node] = int(capacity)

    def add_edge(self, u: str, v: str, weight: float) -> None:
        """Add edge ``{u, v}`` with ``weight``; endpoints are auto-added.

        Re-adding an existing edge overwrites its weight.  Weights must be
        positive: the b-matching objective never benefits from non-positive
        edges, and the primal-dual analysis assumes ``w(e) > 0``.
        """
        if weight <= 0:
            raise ValueError(f"edge weights must be positive, got {weight}")
        if u == v:
            raise ValueError(f"self-loops are not allowed: {u!r}")
        for node in (u, v):
            if node not in self._adj:
                self.add_node(node)
        if v not in self._adj[u]:
            self._num_edges += 1
        self._adj[u][v] = float(weight)
        self._adj[v][u] = float(weight)

    def remove_edge(self, u: str, v: str) -> None:
        """Remove edge ``{u, v}``; raises ``KeyError`` if absent."""
        del self._adj[u][v]
        del self._adj[v][u]
        self._num_edges -= 1

    def remove_node(self, node: str) -> None:
        """Remove ``node`` and every incident edge."""
        for neighbor in list(self._adj[node]):
            self.remove_edge(node, neighbor)
        del self._adj[node]
        del self._capacity[node]

    # -- queries -----------------------------------------------------------

    def has_node(self, node: str) -> bool:
        """Whether ``node`` is present."""
        return node in self._adj

    def has_edge(self, u: str, v: str) -> bool:
        """Whether edge ``{u, v}`` is present."""
        return u in self._adj and v in self._adj[u]

    def weight(self, u: str, v: str) -> float:
        """The weight of edge ``{u, v}``; raises ``KeyError`` if absent."""
        return self._adj[u][v]

    def capacity(self, node: str) -> int:
        """The capacity ``b(node)``."""
        return self._capacity[node]

    def capacities(self) -> Dict[str, int]:
        """A copy of the full capacity function ``b``."""
        return dict(self._capacity)

    def neighbors(self, node: str) -> Iterator[str]:
        """Iterate over the neighbors of ``node``."""
        return iter(self._adj[node])

    def incident(self, node: str) -> Iterator[Tuple[str, float]]:
        """Iterate over ``(neighbor, weight)`` pairs of ``node``."""
        return iter(self._adj[node].items())

    def degree(self, node: str) -> int:
        """Number of edges incident to ``node``."""
        return len(self._adj[node])

    def nodes(self) -> Iterator[str]:
        """Iterate over all nodes."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges once each, endpoints normalized."""
        for u, neighbors in self._adj.items():
            for v, weight in neighbors.items():
                if u < v:
                    yield Edge(u, v, weight)

    def edge_keys(self) -> Iterator[EdgeKey]:
        """Iterate over all normalized edge keys."""
        for edge in self.edges():
            yield edge.key

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return self._num_edges

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return sum(edge.weight for edge in self.edges())

    def adjacency_copy(self) -> Dict[str, Dict[str, float]]:
        """A deep copy of the adjacency structure (node -> nbr -> weight).

        Algorithms that mutate the graph as they run (maximal matching,
        the stack push phase) operate on this copy.
        """
        return {node: dict(nbrs) for node, nbrs in self._adj.items()}

    # -- transforms ----------------------------------------------------------

    def copy(self) -> "Graph":
        """Deep copy of structure, weights, and capacities."""
        clone = type(self).__new__(type(self))
        Graph.__init__(clone)
        self._copy_into(clone)
        return clone

    def _copy_into(self, clone: "Graph") -> None:
        clone._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        clone._capacity = dict(self._capacity)
        clone._num_edges = self._num_edges

    def thresholded(self, sigma: float) -> "Graph":
        """Return a copy keeping only edges of weight ``>= sigma``.

        This implements the paper's candidate-edge pruning knob: sweeping
        ``sigma`` sweeps the number of edges that participate in the
        matching.  All nodes are kept (capacities unchanged).
        """
        clone = self.copy()
        for edge in list(clone.edges()):
            if edge.weight < sigma:
                clone.remove_edge(edge.u, edge.v)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )


class BipartiteGraph(Graph):
    """The bipartite graph of Problem 1: items ``T`` versus consumers ``C``.

    Every edge must connect an item to a consumer; :meth:`add_edge`
    enforces it.  Use :meth:`add_item` / :meth:`add_consumer` to declare
    node sides before adding edges.
    """

    def __init__(self) -> None:
        super().__init__()
        self._side: Dict[str, str] = {}

    def add_item(self, node: str, capacity: int = 1) -> None:
        """Add an item (content) node."""
        self._add_sided(node, ITEM_SIDE, capacity)

    def add_consumer(self, node: str, capacity: int = 1) -> None:
        """Add a consumer (user) node."""
        self._add_sided(node, CONSUMER_SIDE, capacity)

    def _add_sided(self, node: str, side: str, capacity: int) -> None:
        existing = self._side.get(node)
        if existing is not None and existing != side:
            raise ValueError(
                f"node {node!r} already declared as {existing}"
            )
        self._side[node] = side
        self.add_node(node, capacity)

    def side(self, node: str) -> str:
        """Return ``ITEM_SIDE`` or ``CONSUMER_SIDE`` for ``node``."""
        return self._side[node]

    def items(self) -> List[str]:
        """All item nodes (sorted for determinism)."""
        return sorted(
            node for node, side in self._side.items() if side == ITEM_SIDE
        )

    def consumers(self) -> List[str]:
        """All consumer nodes (sorted for determinism)."""
        return sorted(
            node
            for node, side in self._side.items()
            if side == CONSUMER_SIDE
        )

    def add_edge(self, u: str, v: str, weight: float) -> None:
        """Add an item-consumer edge; rejects same-side edges."""
        side_u = self._side.get(u)
        side_v = self._side.get(v)
        if side_u is None or side_v is None:
            raise ValueError(
                "declare sides with add_item/add_consumer before adding "
                f"edge ({u!r}, {v!r})"
            )
        if side_u == side_v:
            raise ValueError(
                f"edge ({u!r}, {v!r}) connects two {side_u} nodes"
            )
        super().add_edge(u, v, weight)

    def _copy_into(self, clone: "Graph") -> None:
        super()._copy_into(clone)
        assert isinstance(clone, BipartiteGraph)
        clone._side = dict(self._side)

    @staticmethod
    def from_edges(
        edges: Iterable[Tuple[str, str, float]],
        item_capacities: Optional[Dict[str, int]] = None,
        consumer_capacities: Optional[Dict[str, int]] = None,
    ) -> "BipartiteGraph":
        """Build a bipartite graph from ``(item, consumer, weight)`` rows.

        Capacities default to 1 for nodes missing from the dictionaries.
        Nodes present in a capacity dictionary but in no edge are added as
        isolated nodes, matching the paper's setting where every node has
        a budget whether or not it has candidate edges.
        """
        graph = BipartiteGraph()
        item_capacities = item_capacities or {}
        consumer_capacities = consumer_capacities or {}
        for node, capacity in item_capacities.items():
            graph.add_item(node, capacity)
        for node, capacity in consumer_capacities.items():
            graph.add_consumer(node, capacity)
        for item, consumer, weight in edges:
            if item not in graph._side:
                graph.add_item(item, 1)
            if consumer not in graph._side:
                graph.add_consumer(consumer, 1)
            graph.add_edge(item, consumer, weight)
        return graph
