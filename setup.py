"""Setup shim for environments without PEP 660 editable-wheel support.

The build environment is offline and lacks the ``wheel`` package, so
``pip install -e .`` falls back to this legacy path
(``pip install -e . --no-build-isolation --no-use-pep517``).
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
